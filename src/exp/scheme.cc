#include "exp/scheme.h"

#include <mutex>
#include <utility>
#include <vector>

#include "core/cc_pert_modules.h"
#include "net/qdisc_registry.h"
#include "sim/suggest.h"
#include "tcp/cc_registry.h"

namespace pert::exp {

SchemeSpec::SchemeSpec(Scheme s) {
  switch (s) {
    case Scheme::kSackDroptail:
      *this = SchemeSpec{"Sack/Droptail", "sack", "droptail", false};
      return;
    case Scheme::kSackRedEcn:
      *this = SchemeSpec{"Sack/RED-ECN", "sack", "red", true};
      return;
    case Scheme::kSackPiEcn:
      *this = SchemeSpec{"Sack/PI-ECN", "sack", "pi", true};
      return;
    case Scheme::kSackRemEcn:
      *this = SchemeSpec{"Sack/REM-ECN", "sack", "rem", true};
      return;
    case Scheme::kSackAvqEcn:
      *this = SchemeSpec{"Sack/AVQ-ECN", "sack", "avq", true};
      return;
    case Scheme::kVegas:
      *this = SchemeSpec{"Vegas", "vegas", "droptail", false};
      return;
    case Scheme::kPert:
      *this = SchemeSpec{"PERT", "pert", "droptail", false};
      return;
    case Scheme::kPertPi:
      *this = SchemeSpec{"PERT-PI", "pert-pi", "droptail", false};
      return;
    case Scheme::kPertRem:
      *this = SchemeSpec{"PERT-REM", "pert-rem", "droptail", false};
      return;
  }
  throw sim::ConfigError("SchemeSpec: Scheme value outside the enumeration",
                         "a Scheme was forged from an out-of-range integer");
}

void ensure_scheme_modules() {
  static std::once_flag once;
  std::call_once(once, [] {
    // instance() registers the layer's own built-ins; the PERT family lives
    // in core/ (layering: tcp/ cannot depend on core/) and is added here.
    tcp::CcRegistry::instance();
    net::QdiscRegistry::instance();
    core::register_pert_cc_modules();
  });
}

namespace {

/// Legacy paper scheme names accepted since the first CLI. New combinations
/// use the "cc/qdisc" grammar instead of growing this table.
const std::pair<std::string_view, Scheme> kLegacyNames[] = {
    {"pert", Scheme::kPert},
    {"pert-pi", Scheme::kPertPi},
    {"pert-rem", Scheme::kPertRem},
    {"vegas", Scheme::kVegas},
    {"sack", Scheme::kSackDroptail},
    {"sack-droptail", Scheme::kSackDroptail},
    {"sack-red", Scheme::kSackRedEcn},
    {"sack-pi", Scheme::kSackPiEcn},
    {"sack-rem", Scheme::kSackRemEcn},
    {"sack-avq", Scheme::kSackAvqEcn},
};

[[noreturn]] void throw_unknown(const std::string& what,
                                const std::string& name,
                                std::vector<std::string> candidates) {
  const std::string hint = sim::closest_match(name, candidates);
  std::string msg = "unknown " + what + ": '" + name + "'";
  if (!hint.empty()) msg += " (did you mean '" + hint + "'?)";
  std::string known = "known names:";
  for (const std::string& c : candidates) known += " " + c;
  throw sim::ConfigError(msg, known);
}

}  // namespace

SchemeSpec parse_scheme_spec(std::string_view text) {
  for (const auto& [name, scheme] : kLegacyNames)
    if (text == name) return SchemeSpec(scheme);

  ensure_scheme_modules();
  auto& ccs = tcp::CcRegistry::instance();
  auto& qds = net::QdiscRegistry::instance();

  const std::size_t slash = text.find('/');
  if (slash == std::string_view::npos) {
    // Not a legacy name and not a combination: suggest across both the
    // legacy table and the CC module names (a bare module name is the most
    // common near-miss for "cc/qdisc").
    std::vector<std::string> candidates;
    for (const auto& [name, scheme] : kLegacyNames)
      candidates.emplace_back(name);
    for (const std::string& n : ccs.names()) candidates.push_back(n);
    throw_unknown("scheme (expected a paper scheme name or 'cc/qdisc')",
                  std::string(text), std::move(candidates));
  }

  const std::string cc(text.substr(0, slash));
  std::string_view rest = text.substr(slash + 1);
  bool ecn_forced = false, ecn_value = false;
  if (rest.size() > 4 && rest.substr(rest.size() - 4) == "+ecn") {
    ecn_forced = true;
    ecn_value = true;
    rest.remove_suffix(4);
  } else if (rest.size() > 4 && rest.substr(rest.size() - 4) == "-ecn") {
    ecn_forced = true;
    ecn_value = false;
    rest.remove_suffix(4);
  }
  const std::string qdisc(rest);

  const tcp::CcInfo* ci = ccs.find(cc);
  if (ci == nullptr)
    throw_unknown("congestion-control module", cc, ccs.names());
  const net::QdiscInfo* qi = qds.find(qdisc);
  if (qi == nullptr) throw_unknown("queue discipline", qdisc, qds.names());

  const bool ecn = ecn_forced ? ecn_value : (ci->wants_ecn || qi->marks_ecn);
  std::string display = cc + "/" + qdisc;
  if (ecn) display += "+ecn";
  return SchemeSpec{std::move(display), cc, qdisc, ecn};
}

}  // namespace pert::exp
