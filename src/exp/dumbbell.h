// Single-bottleneck (dumbbell) scenario builder + windowed measurement.
//
// Two routers joined by the bottleneck; every long-term flow and web session
// gets its own source and sink node on private access links, so per-flow RTTs
// are set by access-link delays exactly as in the paper's Section 2.2 setup.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/pert_params.h"
#include "exp/scheme.h"
#include "exp/window_metrics.h"
#include "exp/window_recorder.h"
#include "net/impairment.h"
#include "net/network.h"
#include "obs/obs.h"
#include "sim/timer.h"
#include "sim/watchdog.h"
#include "tcp/flow_arena.h"
#include "tcp/tcp_sender.h"
#include "tcp/tcp_sink.h"
#include "traffic/web_session.h"

namespace pert::exp {

struct DumbbellConfig {
  /// End-host CC module + bottleneck discipline + ECN. Assignable from a
  /// legacy `Scheme` enumerator or a parse_scheme_spec() result.
  SchemeSpec scheme = Scheme::kPert;
  double bottleneck_bps = 150e6;
  /// End-to-end two-way propagation delay for flows without an explicit RTT.
  double rtt = 0.060;
  /// Per-flow RTTs for forward long-term flows; empty = all use `rtt`.
  std::vector<double> flow_rtts;
  std::int32_t num_fwd_flows = 10;
  std::int32_t num_rev_flows = 0;
  std::int32_t num_web_sessions = 0;
  /// 0 = auto: BDP in packets, at least 2x the number of flows (paper rule).
  std::int32_t buffer_pkts = 0;
  /// Access links run at this multiple of the bottleneck rate (>= 2).
  double access_multiplier = 4.0;
  /// Long-term flow start times are uniform in [0, start_window).
  double start_window = 50.0;
  /// Added to every flow/web start time: shifting the whole scenario later
  /// by a constant must not change what happens (the time-origin-shift
  /// metamorphic relation; callers add the same offset to warmup).
  double start_offset = 0.0;
  std::uint64_t seed = 1;
  /// First FlowId assigned; flow ids are labels carried in packets and must
  /// never influence control flow (the relabeling metamorphic relation).
  std::int32_t flow_id_base = 0;
  tcp::TcpConfig tcp;            ///< seg size etc.; ecn set per scheme
  core::PertParams pert;         ///< PERT knobs (ablations override)
  traffic::WebParams web;
  /// PI designs are derived from these bounds (both router PI and PERT/PI).
  double pi_target_delay = 0.003;
  /// Gain scale applied to the PERT/PI end-host controller design. Higher
  /// gain tracks the target delay tighter but worsens fairness (flows with
  /// a biased min-RTT estimate respond unequally); 0.5 balances the two and
  /// reproduces the paper's "slightly worse fairness at low RTT".
  double pert_pi_gain_boost = 0.5;
  /// Sampling frequency of the PERT/PI end-host controller (paper: 170 Hz).
  /// A config knob (not a constant) so time-rescaled twin scenarios can
  /// scale every time dimension consistently.
  double pert_pi_sample_hz = 170.0;
  /// Mix: fraction of forward long-term flows using plain SACK instead of
  /// the scheme under test (co-existence ablation). 0 = none.
  double nonproactive_fraction = 0.0;
  /// Non-congestion impairments applied to the forward bottleneck (loss,
  /// reordering, jitter, bit errors) and link flaps on the forward link.
  /// Default: none. Impairment randomness comes from a stream forked off the
  /// scenario RNG only when enabled, so clean runs are byte-identical to
  /// pre-impairment builds.
  net::ImpairmentConfig impair;
  /// Simulation watchdog (invariants + stall detector); enabled by default
  /// in every scenario. `watchdog.cancel` may point at a runner cancellation
  /// flag for cooperative wall-clock timeouts.
  sim::WatchdogOptions watchdog;
  /// Observability: structured tracing, metric registry, and the sampling
  /// cadence. Off by default; un-observed runs schedule no extra events and
  /// are byte-identical to pre-observability builds.
  obs::ObsConfig obs;
  /// Parallel engine worker threads. 0 (default) = the classic
  /// single-scheduler path, byte-identical to previous builds. >= 1
  /// partitions the topology into two router shards (one per bottleneck
  /// direction; the bottleneck propagation delay is their lookahead) plus
  /// kFlowShards endpoint shards (a fixed layout, independent of the
  /// thread count) and runs the
  /// conservative engine — results are byte-identical for every value, with
  /// sim_threads=1 as the oracle. Incompatible with web sessions, dynamic
  /// add_flows, the watchdog, and observability (see docs/performance.md).
  std::int32_t sim_threads = 0;

  /// Rejects an out-of-domain topology with sim::ConfigError before any
  /// node is built, including the nested TCP/PERT/impairment configs —
  /// a bad scenario must fail at construction, not mid-run.
  void validate() const;
};

class Dumbbell {
 public:
  /// Endpoint shards of a sharded (sim_threads >= 1) dumbbell. Fixed — NOT
  /// derived from sim_threads — so the event-key streams, and therefore the
  /// results, are identical whether 1 or 8 workers execute them.
  static constexpr std::int32_t kFlowShards = 8;

  explicit Dumbbell(DumbbellConfig cfg);

  /// Advances to `warmup`, then measures until `warmup + measure`.
  WindowMetrics measure_window(sim::Time warmup, sim::Time measure);

  net::Network& network() noexcept { return net_; }
  net::Queue& fwd_queue() noexcept { return *fwd_queue_; }
  net::Link& fwd_link() noexcept { return *fwd_link_; }
  tcp::TcpSender& fwd_sender(std::int32_t i) { return *fwd_senders_.at(i); }
  std::int32_t num_fwd() const {
    return static_cast<std::int32_t>(fwd_senders_.size());
  }
  const DumbbellConfig& config() const noexcept { return cfg_; }
  std::int32_t buffer_pkts() const noexcept { return buffer_pkts_; }

  /// The installed watchdog, or nullptr when cfg.watchdog.enabled is false.
  sim::InvariantChecker* watchdog() noexcept { return checker_.get(); }

  /// The scenario's observability hub (tracer, registry, probes).
  obs::Observability& obs() noexcept { return obs_; }
  const obs::Observability& obs() const noexcept { return obs_; }

  /// Installs a probe (not owned); it receives the periodic sample stream
  /// ("queue.len", "queue.delay", "tcp.cwnd", "tcp.srtt") and every trace
  /// event passing the tracer's filters.
  void add_probe(obs::Probe* p) { obs_.add_probe(p); }

  /// Goodput (acked payload bits/s) of forward flow i over the last
  /// measure_window(). Valid after measure_window().
  double flow_goodput(std::int32_t i) const { return goodputs_.at(i); }

  /// Creates and starts one more cohort of `n` forward flows at time `at`
  /// (dynamic-behavior experiment). Returns indices of the new flows.
  std::vector<std::int32_t> add_flows(std::int32_t n, sim::Time at);

  /// Stops flow i (no more data after current window drains): used to model
  /// departures in the dynamic experiment.
  void stop_flow(std::int32_t i);

  /// Acked packet count of flow i (for externally-managed measurement).
  std::int64_t flow_acked(std::int32_t i) const {
    return fwd_senders_.at(i)->snd_una();
  }

 private:
  std::unique_ptr<net::Queue> make_bottleneck_queue();
  tcp::TcpSender* make_sender(net::FlowId flow, bool force_sack);
  /// Periodic observability sample; self-rescheduling while active.
  void sample_tick();
  /// Starts the sampling timer once, iff anything is listening. Called at
  /// the head of measure_window() so probes installed after construction
  /// still get samples; never called on un-observed runs, keeping them
  /// event-for-event identical to pre-observability builds.
  void maybe_start_sampler();
  /// Builds one source/sink pair with the given one-way access delays and
  /// returns the started sender.
  tcp::TcpSender* add_flow_path(net::Node* edge_src, net::Node* edge_dst,
                                double rtt, net::FlowId flow, sim::Time start,
                                bool force_sack, bool reverse);

  DumbbellConfig cfg_;
  net::Network net_;
  net::Node* r1_ = nullptr;  ///< left router
  net::Node* r2_ = nullptr;  ///< right router
  net::Link* fwd_link_ = nullptr;
  net::Queue* fwd_queue_ = nullptr;
  std::int32_t buffer_pkts_ = 0;
  double bottleneck_delay_ = 0;

  std::vector<tcp::TcpSender*> fwd_senders_;
  std::vector<tcp::TcpSink*> fwd_sinks_;
  std::vector<tcp::TcpSender*> rev_senders_;
  std::vector<tcp::TcpSender*> web_senders_;
  std::vector<std::unique_ptr<traffic::WebSession>> web_sessions_;
  std::vector<double> goodputs_;
  net::FlowId next_flow_ = 0;
  /// Round-robin cursor assigning each flow path to an endpoint shard.
  std::int32_t next_flow_shard_ = 0;
  /// Struct-of-arrays backing for per-flow hot state: one arena on the
  /// classic path, one per endpoint shard when sharded (so parallel workers
  /// never share a lane, or a cache line, across shards).
  std::vector<std::unique_ptr<tcp::FlowArena>> arenas_;
  /// Arena for the flow path currently under construction (set by
  /// add_flow_path, consumed by make_sender).
  tcp::FlowArena* cur_arena_ = nullptr;
  std::unique_ptr<sim::InvariantChecker> checker_;

  obs::Observability obs_;
  WindowRecorder recorder_;
  sim::Timer sampler_;
  bool sampler_started_ = false;
};

}  // namespace pert::exp
