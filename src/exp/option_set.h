// Typed command-line option builder shared by every driver binary.
//
// Replaces the three hand-rolled flag loops that used to live in
// bench/common.h, tools/pert_sim.cc and tools/fuzz_scenarios.cc with one
// grammar:
//   --flag            boolean, presence sets true
//   --opt V / --opt=V valued option (string, unsigned, uint64, double)
//   repeated valued options append when bound to a vector
//   bare tokens       collected as positionals when enabled (the key=value
//                     scenario grammar), rejected otherwise
// Unknown dash-prefixed tokens are always an error naming the token, and
// --help/-h prints an auto-generated usage listing every registered option.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace pert::exp::cli {

class OptionSet {
 public:
  /// `program` names the binary in usage output; `about` is an optional
  /// one-line description printed above the option list.
  explicit OptionSet(std::string program, std::string about = "");

  // Registration. `help` strings feed the generated --help text.
  OptionSet& flag(const std::string& name, bool* out, const std::string& help);
  OptionSet& opt(const std::string& name, std::string* out,
                 const std::string& help, const std::string& metavar = "V");
  OptionSet& opt(const std::string& name, unsigned* out,
                 const std::string& help, const std::string& metavar = "N");
  OptionSet& opt(const std::string& name, std::uint64_t* out,
                 const std::string& help, const std::string& metavar = "N");
  OptionSet& opt(const std::string& name, double* out, const std::string& help,
                 const std::string& metavar = "X");
  /// Valued option that may repeat; every occurrence is appended.
  OptionSet& multi(const std::string& name, std::vector<std::string>* out,
                   const std::string& help, const std::string& metavar = "V");
  /// Accept bare (non-dash) tokens, collected into `out` in order. Without
  /// this, bare tokens are an error.
  OptionSet& positionals(std::vector<std::string>* out,
                         const std::string& help);

  enum class Result {
    kOk,     ///< parsed cleanly; outputs are filled in
    kHelp,   ///< --help/-h seen; usage printed to stdout
    kError,  ///< bad input; message + usage printed to stderr
  };

  /// Parses argv[1..argc). On error prints "error: ..." and the usage text
  /// to stderr. Callers exit 0 on kHelp and 2 on kError by convention.
  Result parse(int argc, char** argv) const;

  /// The auto-generated usage text (also printed by parse on help/error).
  std::string usage() const;

 private:
  enum class Kind { kFlag, kString, kUnsigned, kUint64, kDouble, kMulti };
  struct Spec {
    std::string name;  ///< including leading dashes, e.g. "--jobs"
    Kind kind;
    void* out;
    std::string help;
    std::string metavar;
  };

  const Spec* find(const std::string& name) const;
  /// Parses `value` into spec.out; returns an error message or "".
  static std::string apply(const Spec& spec, const std::string& value);

  std::string program_;
  std::string about_;
  std::vector<Spec> specs_;
  std::vector<std::string>* positionals_ = nullptr;
  std::string positionals_help_;
};

}  // namespace pert::exp::cli
