// Scheme registry: the end-host + queue combinations compared in the paper.
#pragma once

#include <string_view>

namespace pert::exp {

enum class Scheme {
  kSackDroptail,  ///< SACK senders, DropTail bottleneck
  kSackRedEcn,    ///< ECN-enabled SACK, Adaptive-RED bottleneck with ECN
  kSackPiEcn,     ///< ECN-enabled SACK, PI bottleneck with ECN
  kSackRemEcn,    ///< ECN-enabled SACK, REM bottleneck with ECN (extension)
  kSackAvqEcn,    ///< ECN-enabled SACK, AVQ bottleneck with ECN (extension)
  kVegas,         ///< TCP Vegas, DropTail bottleneck
  kPert,          ///< PERT (RED emulation), DropTail bottleneck
  kPertPi,        ///< PERT/PI (PI emulation), DropTail bottleneck
  kPertRem,       ///< PERT/REM (REM emulation), DropTail bottleneck (ext.)
};

constexpr std::string_view to_string(Scheme s) {
  switch (s) {
    case Scheme::kSackDroptail: return "Sack/Droptail";
    case Scheme::kSackRedEcn: return "Sack/RED-ECN";
    case Scheme::kSackPiEcn: return "Sack/PI-ECN";
    case Scheme::kSackRemEcn: return "Sack/REM-ECN";
    case Scheme::kSackAvqEcn: return "Sack/AVQ-ECN";
    case Scheme::kVegas: return "Vegas";
    case Scheme::kPert: return "PERT";
    case Scheme::kPertPi: return "PERT-PI";
    case Scheme::kPertRem: return "PERT-REM";
  }
  return "?";
}

/// Does the scheme place an AQM at the bottleneck router?
constexpr bool router_aqm(Scheme s) {
  return s == Scheme::kSackRedEcn || s == Scheme::kSackPiEcn ||
         s == Scheme::kSackRemEcn || s == Scheme::kSackAvqEcn;
}

/// Does the scheme's sender use ECN?
constexpr bool sender_ecn(Scheme s) { return router_aqm(s); }

}  // namespace pert::exp
