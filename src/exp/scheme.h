// Scheme descriptors: which congestion-control module runs at the end hosts,
// which queue discipline runs at the bottleneck, and whether the combination
// uses ECN.
//
// The paper compares nine fixed combinations; those survive as the `Scheme`
// enum plus an implicit conversion to `SchemeSpec`, so `cfg.scheme =
// Scheme::kPert` and every recorded seed keep working unchanged. New
// combinations need no enum edit: `parse_scheme_spec("cubic/codel")` resolves
// both names against tcp::CcRegistry and net::QdiscRegistry, with
// did-you-mean suggestions for typos.
#pragma once

#include <string>
#include <string_view>

#include "sim/errors.h"

namespace pert::exp {

/// The nine fixed end-host + queue combinations compared in the paper.
/// Kept for compatibility: every test and driver that names a paper scheme
/// does so through this enum; `SchemeSpec` is the open-ended superset.
enum class Scheme {
  kSackDroptail,  ///< SACK senders, DropTail bottleneck
  kSackRedEcn,    ///< ECN-enabled SACK, Adaptive-RED bottleneck with ECN
  kSackPiEcn,     ///< ECN-enabled SACK, PI bottleneck with ECN
  kSackRemEcn,    ///< ECN-enabled SACK, REM bottleneck with ECN (extension)
  kSackAvqEcn,    ///< ECN-enabled SACK, AVQ bottleneck with ECN (extension)
  kVegas,         ///< TCP Vegas, DropTail bottleneck
  kPert,          ///< PERT (RED emulation), DropTail bottleneck
  kPertPi,        ///< PERT/PI (PI emulation), DropTail bottleneck
  kPertRem,       ///< PERT/REM (REM emulation), DropTail bottleneck (ext.)
};

constexpr std::string_view to_string(Scheme s) {
  switch (s) {
    case Scheme::kSackDroptail: return "Sack/Droptail";
    case Scheme::kSackRedEcn: return "Sack/RED-ECN";
    case Scheme::kSackPiEcn: return "Sack/PI-ECN";
    case Scheme::kSackRemEcn: return "Sack/REM-ECN";
    case Scheme::kSackAvqEcn: return "Sack/AVQ-ECN";
    case Scheme::kVegas: return "Vegas";
    case Scheme::kPert: return "PERT";
    case Scheme::kPertPi: return "PERT-PI";
    case Scheme::kPertRem: return "PERT-REM";
  }
  throw sim::ConfigError("to_string(Scheme): value outside the enumeration",
                         "a Scheme was forged from an out-of-range integer");
}

/// Does the scheme place an AQM at the bottleneck router?
constexpr bool router_aqm(Scheme s) {
  return s == Scheme::kSackRedEcn || s == Scheme::kSackPiEcn ||
         s == Scheme::kSackRemEcn || s == Scheme::kSackAvqEcn;
}

/// Does the scheme's sender use ECN?
constexpr bool sender_ecn(Scheme s) { return router_aqm(s); }

/// An open-ended scheme: a congestion-control module name (tcp::CcRegistry
/// key), a queue-discipline name (net::QdiscRegistry key), and the ECN bit
/// for the combination. Equality ignores the display string — two specs are
/// the same scheme when they build the same simulation.
struct SchemeSpec {
  std::string display = "Sack/Droptail";  ///< table/report label
  std::string cc = "sack";                ///< tcp::CcRegistry key
  std::string qdisc = "droptail";         ///< net::QdiscRegistry key
  bool ecn = false;          ///< senders ECN-capable & discipline marks

  SchemeSpec() = default;
  SchemeSpec(std::string display, std::string cc, std::string qdisc, bool ecn)
      : display(std::move(display)),
        cc(std::move(cc)),
        qdisc(std::move(qdisc)),
        ecn(ecn) {}

  /// Implicit on purpose: `cfg.scheme = Scheme::kPert` and the nine recorded
  /// paper schemes must keep compiling and produce byte-identical runs.
  SchemeSpec(Scheme s);  // NOLINT(google-explicit-constructor)

  /// Does the spec place an AQM at the bottleneck router?
  bool router_aqm() const noexcept { return qdisc != "droptail"; }
};

inline bool operator==(const SchemeSpec& a, const SchemeSpec& b) noexcept {
  return a.cc == b.cc && a.qdisc == b.qdisc && a.ecn == b.ecn;
}
inline bool operator!=(const SchemeSpec& a, const SchemeSpec& b) noexcept {
  return !(a == b);
}

/// Display label; overloads to_string(Scheme) so call sites printing a
/// config's scheme work for both representations.
inline const std::string& to_string(const SchemeSpec& s) noexcept {
  return s.display;
}

/// Registers every in-tree congestion-control module and queue discipline
/// (idempotent; thread-safe). Called by the topology builders and the
/// scheme parser before their first registry lookup — out-of-tree modules
/// using CcRegistrar/QdiscRegistrar are independent of it.
void ensure_scheme_modules();

/// Parses a scheme string. Accepts the nine legacy paper names
/// (pert | pert-pi | pert-rem | vegas | sack | sack-droptail | sack-red |
/// sack-pi | sack-rem | sack-avq) and free-form "cc/qdisc" combinations
/// ("cubic/codel", "dctcp/red+ecn"), where an optional "+ecn" / "-ecn"
/// suffix overrides the default (ECN on when the CC module wants it or the
/// discipline can mark). Unknown names throw sim::ConfigError with a
/// did-you-mean suggestion.
SchemeSpec parse_scheme_spec(std::string_view text);

}  // namespace pert::exp
