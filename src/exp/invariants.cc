#include "exp/invariants.h"

#include <sstream>
#include <string>
#include <utility>

namespace pert::exp {

std::unique_ptr<sim::InvariantChecker> install_standard_invariants(
    net::Network& net,
    std::function<std::vector<const tcp::TcpSender*>()> senders,
    const sim::WatchdogOptions& opts) {
  if (!opts.enabled) return nullptr;
  auto checker = std::make_unique<sim::InvariantChecker>(net.sched(), opts);

  checker->add_invariant("queue-conservation", [&net] {
    const auto links = net.links();
    for (std::size_t i = 0; i < links.size(); ++i) {
      std::string v = links[i]->queue().conservation_violation();
      if (!v.empty()) return "link " + std::to_string(i) + ": " + v;
    }
    return std::string{};
  });

  checker->add_invariant("sender-state", [senders] {
    for (const tcp::TcpSender* s : senders()) {
      std::string v = s->invariant_violation();
      if (!v.empty())
        return "flow " + std::to_string(s->flow()) + ": " + v;
    }
    return std::string{};
  });

  // Numeric sentinels: non-finite EWMAs / integrator state / averaged queue
  // estimates and saturating byte counters rot silently — every later value
  // stays plausible-looking garbage. Polled only on watchdog ticks, so the
  // packet hot path pays nothing for the check.
  checker->add_invariant("numeric-sentinel", [&net] {
    const auto links = net.links();
    for (std::size_t i = 0; i < links.size(); ++i) {
      std::string v = links[i]->queue().numeric_violation();
      if (v.empty()) v = links[i]->numeric_violation();
      if (!v.empty()) return "link " + std::to_string(i) + ": " + v;
    }
    return std::string{};
  });

  checker->set_progress_probe([&net, senders] {
    std::uint64_t progress = 0;
    for (const tcp::TcpSender* s : senders())
      progress += static_cast<std::uint64_t>(s->snd_una());
    for (const net::Link* l : net.links())
      progress += l->queue().snapshot().departures;
    return progress;
  });

  checker->add_diagnostic("flows", [senders] {
    std::ostringstream out;
    const auto list = senders();
    // Cap the snapshot: a 500-flow scenario does not need 500 lines to
    // diagnose a stall.
    const std::size_t cap = 32;
    for (std::size_t i = 0; i < list.size() && i < cap; ++i)
      out << "  " << list[i]->state_line() << '\n';
    if (list.size() > cap)
      out << "  ... " << list.size() - cap << " more flows\n";
    return out.str();
  });

  checker->add_diagnostic("queues", [&net] {
    std::ostringstream out;
    const auto links = net.links();
    for (std::size_t i = 0; i < links.size(); ++i) {
      const net::Queue& q = links[i]->queue();
      const net::Queue::Stats s = q.snapshot();
      if (s.arrivals == 0) continue;  // untouched access links are noise
      out << "  link " << i << ": len=" << q.len_pkts()
          << " arrivals=" << s.arrivals << " departures=" << s.departures
          << " drops=" << s.drops << " (overflow=" << s.forced_drops
          << " congestion=" << s.early_drops
          << " injected=" << s.injected_drops << ")"
          << (links[i]->down() ? " DOWN" : "") << '\n';
    }
    return out.str();
  });

  checker->start();
  return checker;
}

}  // namespace pert::exp
