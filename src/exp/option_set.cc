#include "exp/option_set.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace pert::exp::cli {

OptionSet::OptionSet(std::string program, std::string about)
    : program_(std::move(program)), about_(std::move(about)) {}

OptionSet& OptionSet::flag(const std::string& name, bool* out,
                           const std::string& help) {
  specs_.push_back({name, Kind::kFlag, out, help, ""});
  return *this;
}

OptionSet& OptionSet::opt(const std::string& name, std::string* out,
                          const std::string& help, const std::string& metavar) {
  specs_.push_back({name, Kind::kString, out, help, metavar});
  return *this;
}

OptionSet& OptionSet::opt(const std::string& name, unsigned* out,
                          const std::string& help, const std::string& metavar) {
  specs_.push_back({name, Kind::kUnsigned, out, help, metavar});
  return *this;
}

OptionSet& OptionSet::opt(const std::string& name, std::uint64_t* out,
                          const std::string& help, const std::string& metavar) {
  specs_.push_back({name, Kind::kUint64, out, help, metavar});
  return *this;
}

OptionSet& OptionSet::opt(const std::string& name, double* out,
                          const std::string& help, const std::string& metavar) {
  specs_.push_back({name, Kind::kDouble, out, help, metavar});
  return *this;
}

OptionSet& OptionSet::multi(const std::string& name,
                            std::vector<std::string>* out,
                            const std::string& help,
                            const std::string& metavar) {
  specs_.push_back({name, Kind::kMulti, out, help, metavar});
  return *this;
}

OptionSet& OptionSet::positionals(std::vector<std::string>* out,
                                  const std::string& help) {
  positionals_ = out;
  positionals_help_ = help;
  return *this;
}

const OptionSet::Spec* OptionSet::find(const std::string& name) const {
  for (const Spec& s : specs_)
    if (s.name == name) return &s;
  return nullptr;
}

std::string OptionSet::apply(const Spec& spec, const std::string& value) {
  switch (spec.kind) {
    case Kind::kFlag:
      return spec.name + " does not take a value";
    case Kind::kString:
      *static_cast<std::string*>(spec.out) = value;
      return {};
    case Kind::kMulti:
      static_cast<std::vector<std::string>*>(spec.out)->push_back(value);
      return {};
    case Kind::kUnsigned:
    case Kind::kUint64: {
      char* end = nullptr;
      const unsigned long long v = std::strtoull(value.c_str(), &end, 10);
      if (end == value.c_str() || *end != '\0')
        return spec.name + " expects a number, got: " + value;
      if (spec.kind == Kind::kUnsigned)
        *static_cast<unsigned*>(spec.out) = static_cast<unsigned>(v);
      else
        *static_cast<std::uint64_t*>(spec.out) = v;
      return {};
    }
    case Kind::kDouble: {
      char* end = nullptr;
      const double v = std::strtod(value.c_str(), &end);
      if (end == value.c_str() || *end != '\0')
        return spec.name + " expects a number, got: " + value;
      *static_cast<double*>(spec.out) = v;
      return {};
    }
  }
  return "internal: unknown option kind";
}

OptionSet::Result OptionSet::parse(int argc, char** argv) const {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "-h" || arg == "--help") {
      std::fputs(usage().c_str(), stdout);
      return Result::kHelp;
    }
    if (arg.size() >= 2 && arg[0] == '-') {
      std::string name = arg;
      std::string inline_value;
      bool has_inline = false;
      const std::size_t eq = arg.find('=');
      if (eq != std::string::npos) {
        name = arg.substr(0, eq);
        inline_value = arg.substr(eq + 1);
        has_inline = true;
      }
      const Spec* spec = find(name);
      if (spec == nullptr) {
        std::fprintf(stderr, "error: unknown flag: %s\n%s", name.c_str(),
                     usage().c_str());
        return Result::kError;
      }
      std::string err;
      if (spec->kind == Kind::kFlag) {
        if (has_inline) {
          err = spec->name + " does not take a value";
        } else {
          *static_cast<bool*>(spec->out) = true;
        }
      } else if (has_inline) {
        err = apply(*spec, inline_value);
      } else if (i + 1 < argc) {
        err = apply(*spec, argv[++i]);
      } else {
        err = spec->name + " needs a value";
      }
      if (!err.empty()) {
        std::fprintf(stderr, "error: %s\n%s", err.c_str(), usage().c_str());
        return Result::kError;
      }
      continue;
    }
    if (positionals_ != nullptr) {
      positionals_->push_back(arg);
      continue;
    }
    std::fprintf(stderr, "error: unexpected argument: %s\n%s", arg.c_str(),
                 usage().c_str());
    return Result::kError;
  }
  return Result::kOk;
}

std::string OptionSet::usage() const {
  std::string out = "usage: " + program_ + " [options]";
  if (positionals_ != nullptr) out += " [" + positionals_help_ + " ...]";
  out += "\n";
  if (!about_.empty()) out += about_ + "\n";
  if (!specs_.empty()) out += "\noptions:\n";
  // Align help text past the longest "--name METAVAR" column.
  std::size_t width = 0;
  auto left_of = [](const Spec& s) {
    return s.kind == Kind::kFlag ? s.name : s.name + " " + s.metavar;
  };
  for (const Spec& s : specs_) width = std::max(width, left_of(s).size());
  for (const Spec& s : specs_) {
    const std::string left = left_of(s);
    out += "  " + left + std::string(width - left.size() + 2, ' ') + s.help;
    if (s.kind == Kind::kMulti) out += " (may repeat)";
    out += "\n";
  }
  return out;
}

}  // namespace pert::exp::cli
