#include "exp/fuzz/metamorphic.h"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <sstream>
#include <utility>

#include "runner/seed.h"

namespace pert::exp::fuzz {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Time added to every start in the shift twin. A multiple of every
/// periodic-controller interval in the tree (RED adapts every 0.5 s, the
/// PI/REM samplers run at integer Hz), so controllers anchored at t = 0
/// keep their phase relative to the shifted traffic.
constexpr double kShift = 8.0;

/// Flow-id offset in the relabel twin.
constexpr std::int32_t kRelabelBase = 4096;

struct RunOutcome {
  bool ok = false;
  WindowMetrics metrics;
  std::string error;
};

RunOutcome run_dumbbell(const DumbbellConfig& cfg, double warmup,
                        double measure) {
  RunOutcome out;
  try {
    Dumbbell d(cfg);
    out.metrics = d.measure_window(warmup, measure);
    out.ok = true;
  } catch (const std::exception& e) {
    out.error = e.what();
  }
  return out;
}

RunOutcome run_baseline(const Scenario& s) {
  RunOutcome out;
  try {
    out.metrics = run_scenario(s).metrics;
    out.ok = true;
  } catch (const std::exception& e) {
    out.error = e.what();
  }
  return out;
}

std::string fmt_num(double v) {
  std::ostringstream ss;
  ss.precision(17);
  ss << v;
  return ss.str();
}

/// "" when equal; otherwise the first differing field, for the failure
/// detail. Field-wise so the report names the metric, unlike operator==.
std::string diff_exact(const WindowMetrics& a, const WindowMetrics& b) {
  auto d = [](const char* name, double x, double y) {
    return std::string(name) + ": " + fmt_num(x) + " vs " + fmt_num(y);
  };
  auto u = [](const char* name, std::uint64_t x, std::uint64_t y) {
    return std::string(name) + ": " + std::to_string(x) + " vs " +
           std::to_string(y);
  };
  if (a.drops != b.drops) return u("drops", a.drops, b.drops);
  if (a.congestion_drops != b.congestion_drops)
    return u("congestion_drops", a.congestion_drops, b.congestion_drops);
  if (a.overflow_drops != b.overflow_drops)
    return u("overflow_drops", a.overflow_drops, b.overflow_drops);
  if (a.injected_drops != b.injected_drops)
    return u("injected_drops", a.injected_drops, b.injected_drops);
  if (a.ecn_marks != b.ecn_marks) return u("ecn_marks", a.ecn_marks, b.ecn_marks);
  if (a.early_responses != b.early_responses)
    return u("early_responses", a.early_responses, b.early_responses);
  if (a.timeouts != b.timeouts) return u("timeouts", a.timeouts, b.timeouts);
  if (a.loss_events != b.loss_events)
    return u("loss_events", a.loss_events, b.loss_events);
  if (a.avg_queue_pkts != b.avg_queue_pkts)
    return d("avg_queue_pkts", a.avg_queue_pkts, b.avg_queue_pkts);
  if (a.utilization != b.utilization)
    return d("utilization", a.utilization, b.utilization);
  if (a.jain != b.jain) return d("jain", a.jain, b.jain);
  if (a.agg_goodput_bps != b.agg_goodput_bps)
    return d("agg_goodput_bps", a.agg_goodput_bps, b.agg_goodput_bps);
  if (a.drop_rate != b.drop_rate) return d("drop_rate", a.drop_rate, b.drop_rate);
  if (a.norm_queue != b.norm_queue)
    return d("norm_queue", a.norm_queue, b.norm_queue);
  return {};
}

bool near(double a, double b, double abs_tol, double rel_tol) {
  return std::abs(a - b) <=
         abs_tol + rel_tol * std::max(std::abs(a), std::abs(b));
}

/// Tolerance comparison for the shift twin: the shift changes event times
/// by ulps, and the packet system amplifies that into trajectory noise, so
/// only aggregate behavior is comparable. Bands are wide enough for that
/// noise and narrow enough that a flow cohort failing to start, a stuck
/// controller, or an unshifted absolute-time anchor all land far outside.
/// Goodput gets an absolute band proportional to link capacity (like the
/// utilization band): on a starved scenario the aggregate is a sliver of
/// the link, and a purely relative test would flag noise worth ~1% of
/// capacity as a 25% "divergence".
std::string diff_shifted(const WindowMetrics& a, const WindowMetrics& b,
                         double capacity_bps) {
  auto fail = [](const char* name, double x, double y) {
    return std::string(name) + ": " + fmt_num(x) + " vs " + fmt_num(y);
  };
  if (!near(a.utilization, b.utilization, 0.12, 0.0))
    return fail("utilization", a.utilization, b.utilization);
  // Droptail sawtooths under global synchronization make the window-average
  // queue phase-sensitive: a 4 s window covers a handful of cycles, and the
  // shift changes which part of the sawtooth the window sees. Observed
  // honest drift reaches ~0.26; a stuck or runaway queue diverges by 0.7+.
  if (!near(a.norm_queue, b.norm_queue, 0.35, 0.0))
    return fail("norm_queue", a.norm_queue, b.norm_queue);
  if (!near(a.drop_rate, b.drop_rate, 0.05, 0.0))
    return fail("drop_rate", a.drop_rate, b.drop_rate);
  if (!near(a.jain, b.jain, 0.30, 0.0))
    return fail("jain", a.jain, b.jain);
  if (!near(a.agg_goodput_bps, b.agg_goodput_bps, 0.12 * capacity_bps, 0.15))
    return fail("agg_goodput_bps", a.agg_goodput_bps, b.agg_goodput_bps);
  return {};
}

/// Comparison for the k = 2 rescale twin. Every time halving and rate
/// doubling is an exact IEEE-754 exponent shift, and every control law in
/// the covered schemes is scale-free, so the twin replays the identical
/// packet sequence: counters must match exactly; dimensionless metrics and
/// the doubled goodput get a tiny tolerance so an implementation detail
/// that reassociates a sum differently does not flag a false symmetry break.
std::string diff_rescaled(const WindowMetrics& full, const WindowMetrics& half) {
  auto u = [](const char* name, std::uint64_t x, std::uint64_t y) {
    return std::string(name) + ": " + std::to_string(x) + " vs " +
           std::to_string(y);
  };
  auto fail = [](const char* name, double x, double y) {
    return std::string(name) + ": " + fmt_num(x) + " vs " + fmt_num(y);
  };
  if (full.drops != half.drops) return u("drops", full.drops, half.drops);
  if (full.congestion_drops != half.congestion_drops)
    return u("congestion_drops", full.congestion_drops, half.congestion_drops);
  if (full.overflow_drops != half.overflow_drops)
    return u("overflow_drops", full.overflow_drops, half.overflow_drops);
  if (full.injected_drops != half.injected_drops)
    return u("injected_drops", full.injected_drops, half.injected_drops);
  if (full.early_responses != half.early_responses)
    return u("early_responses", full.early_responses, half.early_responses);
  if (full.timeouts != half.timeouts)
    return u("timeouts", full.timeouts, half.timeouts);
  if (full.loss_events != half.loss_events)
    return u("loss_events", full.loss_events, half.loss_events);
  const double kRel = 1e-9;
  if (!near(full.avg_queue_pkts, half.avg_queue_pkts, 1e-9, kRel))
    return fail("avg_queue_pkts", full.avg_queue_pkts, half.avg_queue_pkts);
  if (!near(full.utilization, half.utilization, 1e-12, kRel))
    return fail("utilization", full.utilization, half.utilization);
  if (!near(full.jain, half.jain, 1e-12, kRel))
    return fail("jain", full.jain, half.jain);
  if (!near(full.drop_rate, half.drop_rate, 1e-12, kRel))
    return fail("drop_rate", full.drop_rate, half.drop_rate);
  if (!near(2.0 * full.agg_goodput_bps, half.agg_goodput_bps, 1e-3, kRel))
    return fail("agg_goodput_bps (x2)", 2.0 * full.agg_goodput_bps,
                half.agg_goodput_bps);
  return {};
}

/// The rescale relation only covers schemes whose control laws are
/// dimensionless in the scaled quantities. The router-AQM discretizations
/// (RED's auto-tuned wq, the PI/REM/AVQ gain designs) re-derive their
/// constants from the link rate, so halving time changes their difference
/// equations — their scaling behavior is pinned by unit tests instead.
bool rescalable_scheme(Scheme s) {
  return s == Scheme::kPert || s == Scheme::kSackDroptail;
}

/// The dumbbell builder floors the access-link delay at 0.5 ms and the
/// access rate at 10 Mbps (see Dumbbell::add_flow_path). A floor that binds
/// produces the *same* access link in both twins where exact scaling needs
/// a halved/doubled one, so scenarios near the floors are out of domain.
/// Access delay is 0.075 * rtt (one-way budget minus the 0.2 * rtt
/// bottleneck share, split over two access links) and must clear the floor
/// in the halved twin; the access rate is 4x the bottleneck and must clear
/// its floor already in the original (the doubled twin then clears it too).
bool rescalable_dimensions(const Scenario& s) {
  return s.bottleneck_bps * 4.0 >= 10e6 &&
         0.075 * (0.5 * s.rtt) >= 0.0005;
}

Scenario rescaled_scenario(const Scenario& s) {
  Scenario out = s;
  out.bottleneck_bps *= 2.0;
  out.rtt *= 0.5;
  out.start_window *= 0.5;
  out.warmup *= 0.5;
  out.measure *= 0.5;
  out.jitter_max_delay *= 0.5;
  out.reorder_max_delay *= 0.5;
  out.flap_first_down *= 0.5;
  out.flap_down_for *= 0.5;
  out.flap_period *= 0.5;
  return out;
}

/// Halves every config-level time constant the scenario mapping does not
/// cover (protocol timers, PERT's delay thresholds, web think times).
void halve_config_times(DumbbellConfig& cfg) {
  cfg.tcp.min_rto *= 0.5;
  cfg.tcp.max_rto *= 0.5;
  cfg.tcp.initial_rto *= 0.5;
  cfg.tcp.delack_timeout *= 0.5;
  cfg.pert.tmin_offset *= 0.5;
  cfg.pert.tmax_offset *= 0.5;
  cfg.pert.adapt_interval *= 0.5;
  cfg.web.think_mean *= 0.5;
  cfg.pi_target_delay *= 0.5;
  cfg.pert_pi_sample_hz *= 2.0;
}

}  // namespace

std::vector<RelationResult> check_relations(const Scenario& s) {
  std::vector<RelationResult> results;
  const RunOutcome base = run_baseline(s);
  if (!base.ok) {
    // The scenario itself fails — that is the plain fuzzer's violation
    // taxonomy, but surface it here too so corner scenarios run through
    // the metamorphic driver cannot crash silently.
    results.push_back({"baseline", true, false, base.error});
    return results;
  }

  const bool dumbbell = s.topology == Topology::kDumbbell;

  // --- seed-stream: fully observed twin must be byte-identical ---
  {
    RelationResult r{"seed-stream", true, true, ""};
    if (dumbbell) {
      DumbbellConfig cfg = to_dumbbell(s);
      cfg.obs.trace.enabled = true;
      cfg.obs.metrics = true;
      const RunOutcome twin = run_dumbbell(cfg, s.warmup, s.measure);
      if (!twin.ok) {
        r.ok = false;
        r.detail = "observed twin threw: " + twin.error;
      } else if (std::string d = diff_exact(base.metrics, twin.metrics);
                 !d.empty()) {
        r.ok = false;
        r.detail = "observed twin diverged: " + d;
      }
    } else {
      try {
        MultiBottleneckConfig cfg = to_multi_bottleneck(s);
        cfg.obs.trace.enabled = true;
        cfg.obs.metrics = true;
        MultiBottleneck mb(cfg);
        const std::vector<HopMetrics> hops =
            mb.measure_window(s.warmup, s.measure);
        // Fold as run_scenario does: the most loaded hop's metrics.
        WindowMetrics folded;
        folded.duration = s.measure;
        for (const HopMetrics& h : hops) {
          if (h.utilization >= folded.utilization) {
            folded.utilization = h.utilization;
            folded.avg_queue_pkts = h.avg_queue_pkts;
            folded.norm_queue = h.norm_queue;
            folded.drop_rate = h.drop_rate;
            folded.jain = h.jain;
          }
        }
        if (folded.utilization != base.metrics.utilization ||
            folded.avg_queue_pkts != base.metrics.avg_queue_pkts ||
            folded.norm_queue != base.metrics.norm_queue ||
            folded.drop_rate != base.metrics.drop_rate ||
            folded.jain != base.metrics.jain) {
          r.ok = false;
          r.detail = "observed chain twin diverged (utilization " +
                     fmt_num(folded.utilization) + " vs " +
                     fmt_num(base.metrics.utilization) + ")";
        }
      } catch (const std::exception& e) {
        r.ok = false;
        r.detail = "observed twin threw: " + std::string(e.what());
      }
    }
    results.push_back(std::move(r));
  }

  // --- time-shift: everything 8 s later, same shifted window ---
  {
    RelationResult r{"time-shift", dumbbell, true, ""};
    if (dumbbell) {
      DumbbellConfig cfg = to_dumbbell(s);
      cfg.start_offset = kShift;
      if (s.has_flaps()) cfg.impair.flap.first_down += kShift;
      const RunOutcome twin = run_dumbbell(cfg, s.warmup + kShift, s.measure);
      if (!twin.ok) {
        r.ok = false;
        r.detail = "shifted twin threw: " + twin.error;
      } else if (std::string d = diff_shifted(base.metrics, twin.metrics,
                                              s.bottleneck_bps);
                 !d.empty()) {
        r.ok = false;
        r.detail = "shifted twin outside tolerance: " + d;
      }
    }
    results.push_back(std::move(r));
  }

  // --- relabel: flow ids offset by a constant, byte-identical ---
  {
    RelationResult r{"relabel", dumbbell, true, ""};
    if (dumbbell) {
      DumbbellConfig cfg = to_dumbbell(s);
      cfg.flow_id_base = kRelabelBase;
      const RunOutcome twin = run_dumbbell(cfg, s.warmup, s.measure);
      if (!twin.ok) {
        r.ok = false;
        r.detail = "relabeled twin threw: " + twin.error;
      } else if (std::string d = diff_exact(base.metrics, twin.metrics);
                 !d.empty()) {
        r.ok = false;
        r.detail = "relabeled twin diverged: " + d;
      }
    }
    results.push_back(std::move(r));
  }

  // --- rescale: k = 2 time/rate scaling, packet-for-packet replay ---
  {
    RelationResult r{"rescale",
                     dumbbell && rescalable_scheme(s.scheme) &&
                         rescalable_dimensions(s),
                     true, ""};
    if (r.applicable) {
      DumbbellConfig cfg = to_dumbbell(rescaled_scenario(s));
      halve_config_times(cfg);
      const RunOutcome twin =
          run_dumbbell(cfg, 0.5 * s.warmup, 0.5 * s.measure);
      if (!twin.ok) {
        r.ok = false;
        r.detail = "rescaled twin threw: " + twin.error;
      } else if (std::string d = diff_rescaled(base.metrics, twin.metrics);
                 !d.empty()) {
        r.ok = false;
        r.detail = "rescaled twin diverged: " + d;
      }
    }
    results.push_back(std::move(r));
  }

  return results;
}

std::vector<Scenario> corner_scenarios(std::uint64_t base_seed) {
  auto corner = [base_seed](const char* name) {
    Scenario s;
    s.seed = runner::derive_seed(base_seed, std::string("corner/") + name);
    s.start_window = 1.0;
    s.warmup = 6.0;
    s.measure = 4.0;
    return s;
  };
  std::vector<Scenario> out;

  // One-packet buffer: every burst overflows; exercises the forced-drop
  // path and RTO recovery with no queueing headroom at all.
  {
    Scenario s = corner("one-packet-buffer");
    s.bottleneck_bps = 10e6;
    s.num_fwd_flows = 4;
    s.buffer_pkts = 1;
    out.push_back(s);
  }
  // Near-zero RTT: sub-millisecond propagation; timers and EWMAs run at
  // the resolution floor where rounding bugs live.
  {
    Scenario s = corner("near-zero-rtt");
    s.bottleneck_bps = 8e6;
    s.rtt = 0.002;
    s.num_fwd_flows = 4;
    out.push_back(s);
  }
  // Huge RTT: one-second paths; windows must grow enormous before the
  // pipe fills, and every feedback loop runs three orders of magnitude
  // slower than the defaults.
  {
    Scenario s = corner("huge-rtt");
    s.bottleneck_bps = 20e6;
    s.rtt = 1.0;
    s.num_fwd_flows = 4;
    s.warmup = 20.0;
    s.measure = 8.0;
    out.push_back(s);
  }
  // One fat flow: 1 Gbps to a single sender; the window and the byte
  // counters take their largest values per simulated second.
  {
    Scenario s = corner("one-gbps-one-flow");
    s.bottleneck_bps = 1e9;
    s.num_fwd_flows = 1;
    s.warmup = 4.0;
    s.measure = 2.0;
    out.push_back(s);
  }
  // Starvation: 10 kbps shared by 100 flows; about one packet per second
  // total, so every flow lives in timeout-driven recovery forever.
  {
    Scenario s = corner("ten-kbps-hundred-flows");
    s.bottleneck_bps = 10e3;
    s.num_fwd_flows = 100;
    s.warmup = 30.0;
    s.measure = 20.0;
    out.push_back(s);
  }
  // Back-to-back flaps: the bottleneck drops every half second for a
  // tenth of a second, ten times in a row across the window boundary.
  {
    Scenario s = corner("back-to-back-flaps");
    s.bottleneck_bps = 10e6;
    s.num_fwd_flows = 6;
    s.flap_first_down = 5.5;
    s.flap_down_for = 0.1;
    s.flap_period = 0.5;
    s.flap_count = 10;
    out.push_back(s);
  }
  return out;
}

MetamorphicSummary run_metamorphic(const MetamorphicOptions& opts) {
  MetamorphicSummary summary;
  const auto t0 = Clock::now();

  auto check_one = [&](const Scenario& s, const char* label) {
    ++summary.scenarios_run;
    for (RelationResult& r : check_relations(s)) {
      if (!r.applicable) continue;
      ++summary.relations_checked;
      if (opts.verbose)
        std::fprintf(stderr, "  metamorphic[%s] seed=%llu %s: %s%s%s\n", label,
                     static_cast<unsigned long long>(s.seed),
                     r.relation.c_str(), r.ok ? "ok" : "FAIL",
                     r.detail.empty() ? "" : " — ", r.detail.c_str());
      if (!r.ok) summary.failures.push_back({s, std::move(r)});
    }
  };

  if (opts.include_corners)
    for (const Scenario& s : corner_scenarios(opts.seed)) check_one(s, "corner");

  for (std::uint64_t i = 0; i < opts.scenarios; ++i) {
    if (opts.time_budget_s > 0 && seconds_since(t0) > opts.time_budget_s)
      break;
    const std::uint64_t seed =
        runner::derive_seed(opts.seed, "metamorphic/" + std::to_string(i));
    check_one(generate_scenario(seed, opts.bounds), "gen");
  }
  return summary;
}

}  // namespace pert::exp::fuzz
