#include "exp/fuzz/generator.h"

#include "sim/random.h"

namespace pert::exp::fuzz {

Scenario generate_scenario(std::uint64_t seed, const GeneratorBounds& b) {
  sim::Rng rng(seed);
  Scenario s;
  s.seed = seed;

  s.topology = rng.bernoulli(b.p_chain) ? Topology::kMultiBottleneck
                                        : Topology::kDumbbell;
  s.bottleneck_bps = rng.uniform(b.min_bps, b.max_bps);
  s.rtt = rng.uniform(b.min_rtt, b.max_rtt);
  s.num_fwd_flows = static_cast<std::int32_t>(rng.uniform_int(
      static_cast<std::uint64_t>(b.min_flows),
      static_cast<std::uint64_t>(b.max_flows)));

  if (rng.bernoulli(b.p_alt_scheme))
    s.scheme = rng.bernoulli(0.5) ? Scheme::kPertPi : Scheme::kSackDroptail;
  else
    s.scheme = Scheme::kPert;

  if (rng.bernoulli(b.p_rev_flows))
    s.num_rev_flows = static_cast<std::int32_t>(rng.uniform_int(1, 4));
  if (rng.bernoulli(b.p_web))
    s.num_web_sessions = static_cast<std::int32_t>(rng.uniform_int(2, 10));
  if (s.scheme != Scheme::kSackDroptail && rng.bernoulli(b.p_sack_mix))
    s.nonproactive_fraction = rng.uniform(0.1, 0.5);

  // Chain dimensions: small, so one scenario stays a few wall-seconds.
  s.num_routers = static_cast<std::int32_t>(rng.uniform_int(3, 4));
  s.hosts_per_cloud = static_cast<std::int32_t>(rng.uniform_int(2, 5));

  // PERT knobs within the paper's studied ranges (pmax around the 0.05
  // default, early response beta around the 0.35 default).
  s.pert_pmax = rng.uniform(0.03, 0.10);
  s.pert_early_beta = rng.uniform(0.25, 0.50);
  s.pert_gentle = true;

  // Impairments within the Section 4 ablation ranges.
  if (rng.bernoulli(b.p_loss)) s.loss_p = rng.uniform(0.0005, 0.01);
  if (rng.bernoulli(b.p_jitter))
    s.jitter_max_delay = rng.uniform(0.001, 0.01);
  if (rng.bernoulli(b.p_reorder)) {
    s.reorder_p = rng.uniform(0.005, 0.05);
    s.reorder_max_delay = rng.uniform(0.002, 0.02);
  }

  s.start_window = 2.0;
  s.warmup = b.warmup;
  s.measure = b.measure;
  return s;
}

}  // namespace pert::exp::fuzz
