#include "exp/fuzz/fuzz.h"

#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "runner/journal.h"
#include "runner/seed.h"
#include "sim/errors.h"

namespace pert::exp::fuzz {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

}  // namespace

const char* build_stamp() {
#ifdef PERT_GIT_DESCRIBE
  return PERT_GIT_DESCRIBE;
#else
  return "unknown";
#endif
}

std::pair<std::string, std::string> classify_scenario(const Scenario& s) {
  WindowMetrics metrics;
  try {
    metrics = run_scenario(s).metrics;
  } catch (const sim::InvariantViolation& e) {
    return {"invariant", e.what()};
  } catch (const sim::StallError& e) {
    return {"stall", e.what()};
  } catch (const std::exception& e) {
    return {"crash", e.what()};
  }
  const OracleVerdict v = check_against_fluid(s, metrics);
  if (v.applicable && !v.ok) return {"oracle", v.failure};
  return {"", ""};
}

Scenario shrink_scenario(const Scenario& s, const std::string& kind) {
  Scenario best = s;
  // Each candidate transformation keeps the seed (the violation must stay
  // reproducible from the bundle alone) and is accepted only if the same
  // violation kind survives. Greedy passes repeat until a fixpoint; the
  // candidate list is small, so this stays a handful of re-runs.
  bool improved = true;
  auto try_candidate = [&](Scenario candidate) {
    if (candidate == best) return;
    if (classify_scenario(candidate).first == kind) {
      best = std::move(candidate);
      improved = true;
    }
  };
  while (improved) {
    improved = false;
    if (best.num_fwd_flows >= 8) {
      Scenario c = best;
      c.num_fwd_flows /= 2;
      try_candidate(std::move(c));
    }
    if (best.measure > 4.0) {
      Scenario c = best;
      c.measure /= 2;
      try_candidate(std::move(c));
    }
    if (best.warmup > 6.0) {
      Scenario c = best;
      c.warmup /= 2;
      try_candidate(std::move(c));
    }
    if (best.num_rev_flows > 0) {
      Scenario c = best;
      c.num_rev_flows = 0;
      try_candidate(std::move(c));
    }
    if (best.num_web_sessions > 0) {
      Scenario c = best;
      c.num_web_sessions = 0;
      try_candidate(std::move(c));
    }
    if (best.nonproactive_fraction > 0) {
      Scenario c = best;
      c.nonproactive_fraction = 0;
      try_candidate(std::move(c));
    }
    // Impairments drop one class at a time, never all at once: when only
    // one of them matters, the others disappear from the repro.
    if (best.loss_p > 0) {
      Scenario c = best;
      c.loss_p = 0;
      try_candidate(std::move(c));
    }
    if (best.jitter_max_delay > 0) {
      Scenario c = best;
      c.jitter_max_delay = 0;
      try_candidate(std::move(c));
    }
    if (best.reorder_p > 0) {
      Scenario c = best;
      c.reorder_p = 0;
      c.reorder_max_delay = 0;
      try_candidate(std::move(c));
    }
    if (best.has_flaps()) {
      Scenario c = best;
      c.flap_first_down = c.flap_down_for = c.flap_period = 0;
      c.flap_count = 0;
      try_candidate(std::move(c));
    }
  }
  return best;
}

std::string write_repro_bundle(const Violation& v, const std::string& dir) {
  runner::JsonValue::Object o;
  o.emplace_back("pert_fuzz_repro", runner::JsonValue(kReproSchemaVersion));
  o.emplace_back("build", runner::JsonValue(std::string(build_stamp())));
  o.emplace_back("kind", runner::JsonValue(v.kind));
  o.emplace_back("detail", runner::JsonValue(v.detail));
  o.emplace_back("iteration", runner::JsonValue(v.iteration));
  o.emplace_back("scenario", to_json(v.scenario));
  o.emplace_back("original_scenario", to_json(v.original));
  const std::string path = dir + "/fuzz_repro_seed" +
                           std::to_string(v.scenario.seed) + ".json";
  runner::atomic_write_file(path,
                            runner::JsonValue(std::move(o)).dump(2) + "\n");
  return path;
}

FuzzSummary run_fuzz(const FuzzOptions& opts) {
  FuzzSummary summary;
  const auto t0 = Clock::now();
  for (std::uint64_t i = 0; i < opts.iterations; ++i) {
    if (opts.time_budget_s > 0 && seconds_since(t0) > opts.time_budget_s)
      break;
    if (!opts.shard.owns(i)) continue;
    const std::uint64_t seed =
        runner::derive_seed(opts.seed, "fuzz/" + std::to_string(i));
    Scenario s = generate_scenario(seed, opts.bounds);
    if (opts.mutate) opts.mutate(s);

    // Count oracle-eligible scenarios via a dry applicability check (the
    // gates don't need metrics to say no).
    if (check_against_fluid(s, WindowMetrics{}).applicable)
      ++summary.oracle_checked;

    const auto [kind, detail] = classify_scenario(s);
    ++summary.iterations_run;
    if (opts.verbose)
      std::fprintf(stderr, "  fuzz[%llu] seed=%llu %s%s\n",
                   static_cast<unsigned long long>(i),
                   static_cast<unsigned long long>(seed),
                   kind.empty() ? "ok" : kind.c_str(),
                   detail.empty() ? "" : (": " + detail).c_str());
    if (kind.empty()) continue;

    Violation v;
    v.original = s;
    v.scenario = opts.shrink ? shrink_scenario(s, kind) : s;
    v.kind = kind;
    // Re-derive the detail from the shrunk scenario (band values change
    // as dimensions shrink).
    v.detail = opts.shrink ? classify_scenario(v.scenario).second : detail;
    if (v.detail.empty()) v.detail = detail;
    v.iteration = i;
    if (!opts.repro_dir.empty())
      v.bundle_path = write_repro_bundle(v, opts.repro_dir);
    summary.violations.push_back(std::move(v));
  }
  return summary;
}

bool replay_repro_bundle(const std::string& path, bool verbose) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("cannot open repro bundle: " + path);
  std::ostringstream ss;
  ss << f.rdbuf();
  const runner::JsonValue doc = runner::JsonValue::parse(ss.str());
  const runner::JsonValue* schema = doc.find("pert_fuzz_repro");
  if (!schema)
    throw std::runtime_error(path + " is not a pert fuzz repro bundle");
  // Version/build drift does not stop the replay — the scenario decoder
  // defaults unknown fields — but a non-reproducing violation on a
  // mismatched bundle is expected, so say so up front.
  if (schema->as_uint() != kReproSchemaVersion)
    std::fprintf(stderr,
                 "warning: bundle schema v%llu, this build expects v%llu; "
                 "replay may not reproduce\n",
                 static_cast<unsigned long long>(schema->as_uint()),
                 static_cast<unsigned long long>(kReproSchemaVersion));
  if (const runner::JsonValue* build = doc.find("build")) {
    if (build->as_string() != build_stamp())
      std::fprintf(stderr,
                   "warning: bundle recorded on build %s, replaying on %s; "
                   "behavior may legitimately differ\n",
                   build->as_string().c_str(), build_stamp());
  }
  const std::string expected_kind = doc.at("kind").as_string();
  const Scenario s = scenario_from_json(doc.at("scenario"));

  const auto [kind, detail] = classify_scenario(s);
  const bool reproduced = kind == expected_kind;
  if (verbose) {
    std::fprintf(stderr, "repro bundle: %s\n", path.c_str());
    std::fprintf(stderr, "  recorded violation: %s (%s)\n",
                 expected_kind.c_str(), doc.at("detail").as_string().c_str());
    std::fprintf(stderr, "  replay:             %s%s%s\n",
                 kind.empty() ? "clean" : kind.c_str(),
                 detail.empty() ? "" : ": ", detail.c_str());
    std::fprintf(stderr, "  %s\n",
                 reproduced ? "REPRODUCED" : "DID NOT REPRODUCE");
  }
  return reproduced;
}

}  // namespace pert::exp::fuzz
