#include "exp/fuzz/scenario.h"

#include <algorithm>
#include <stdexcept>

#include "exp/cli.h"

namespace pert::exp::fuzz {

namespace {

/// CLI-vocabulary scheme names ("pert", "sack", ...): the spelling
/// parse_scheme accepts, so scenario JSON round-trips through the same
/// parser the pert_sim command line uses.
std::string scheme_cli_name(Scheme s) {
  switch (s) {
    case Scheme::kPert: return "pert";
    case Scheme::kPertPi: return "pert-pi";
    case Scheme::kPertRem: return "pert-rem";
    case Scheme::kVegas: return "vegas";
    case Scheme::kSackDroptail: return "sack";
    case Scheme::kSackRedEcn: return "sack-red";
    case Scheme::kSackPiEcn: return "sack-pi";
    case Scheme::kSackRemEcn: return "sack-rem";
    case Scheme::kSackAvqEcn: return "sack-avq";
  }
  return "pert";
}

double num_or(const runner::JsonValue& obj, std::string_view key,
              double fallback) {
  const runner::JsonValue* v = obj.find(key);
  return v && v->is_number() ? v->as_double() : fallback;
}

std::int32_t int_or(const runner::JsonValue& obj, std::string_view key,
                    std::int32_t fallback) {
  const runner::JsonValue* v = obj.find(key);
  return v && v->is_number() ? static_cast<std::int32_t>(v->as_double())
                             : fallback;
}

}  // namespace

std::string to_string(Topology t) {
  return t == Topology::kDumbbell ? "dumbbell" : "multi_bottleneck";
}

Topology topology_from_string(const std::string& s) {
  if (s == "dumbbell") return Topology::kDumbbell;
  if (s == "multi_bottleneck") return Topology::kMultiBottleneck;
  throw std::invalid_argument("unknown topology: " + s);
}

runner::JsonValue to_json(const Scenario& s) {
  runner::JsonValue::Object o;
  o.reserve(24);
  o.emplace_back("seed", runner::JsonValue(s.seed));
  o.emplace_back("topology", runner::JsonValue(to_string(s.topology)));
  o.emplace_back("scheme", runner::JsonValue(scheme_cli_name(s.scheme)));
  o.emplace_back("bottleneck_bps", runner::JsonValue(s.bottleneck_bps));
  o.emplace_back("rtt", runner::JsonValue(s.rtt));
  o.emplace_back("num_fwd_flows", runner::JsonValue(s.num_fwd_flows));
  o.emplace_back("num_rev_flows", runner::JsonValue(s.num_rev_flows));
  o.emplace_back("num_web_sessions", runner::JsonValue(s.num_web_sessions));
  o.emplace_back("buffer_pkts", runner::JsonValue(s.buffer_pkts));
  o.emplace_back("nonproactive_fraction",
                 runner::JsonValue(s.nonproactive_fraction));
  o.emplace_back("num_routers", runner::JsonValue(s.num_routers));
  o.emplace_back("hosts_per_cloud", runner::JsonValue(s.hosts_per_cloud));
  o.emplace_back("pert_pmax", runner::JsonValue(s.pert_pmax));
  o.emplace_back("pert_early_beta", runner::JsonValue(s.pert_early_beta));
  o.emplace_back("pert_gentle", runner::JsonValue(s.pert_gentle));
  o.emplace_back("loss_p", runner::JsonValue(s.loss_p));
  o.emplace_back("jitter_max_delay", runner::JsonValue(s.jitter_max_delay));
  o.emplace_back("reorder_p", runner::JsonValue(s.reorder_p));
  o.emplace_back("reorder_max_delay",
                 runner::JsonValue(s.reorder_max_delay));
  o.emplace_back("flap_first_down", runner::JsonValue(s.flap_first_down));
  o.emplace_back("flap_down_for", runner::JsonValue(s.flap_down_for));
  o.emplace_back("flap_period", runner::JsonValue(s.flap_period));
  o.emplace_back("flap_count", runner::JsonValue(s.flap_count));
  o.emplace_back("start_window", runner::JsonValue(s.start_window));
  o.emplace_back("warmup", runner::JsonValue(s.warmup));
  o.emplace_back("measure", runner::JsonValue(s.measure));
  return runner::JsonValue(std::move(o));
}

Scenario scenario_from_json(const runner::JsonValue& v) {
  Scenario s;
  if (const runner::JsonValue* seed = v.find("seed")) s.seed = seed->as_uint();
  if (const runner::JsonValue* t = v.find("topology"))
    s.topology = topology_from_string(t->as_string());
  if (const runner::JsonValue* sch = v.find("scheme"))
    s.scheme = parse_scheme(sch->as_string());
  s.bottleneck_bps = num_or(v, "bottleneck_bps", s.bottleneck_bps);
  s.rtt = num_or(v, "rtt", s.rtt);
  s.num_fwd_flows = int_or(v, "num_fwd_flows", s.num_fwd_flows);
  s.num_rev_flows = int_or(v, "num_rev_flows", s.num_rev_flows);
  s.num_web_sessions = int_or(v, "num_web_sessions", s.num_web_sessions);
  s.buffer_pkts = int_or(v, "buffer_pkts", s.buffer_pkts);
  s.nonproactive_fraction =
      num_or(v, "nonproactive_fraction", s.nonproactive_fraction);
  s.num_routers = int_or(v, "num_routers", s.num_routers);
  s.hosts_per_cloud = int_or(v, "hosts_per_cloud", s.hosts_per_cloud);
  s.pert_pmax = num_or(v, "pert_pmax", s.pert_pmax);
  s.pert_early_beta = num_or(v, "pert_early_beta", s.pert_early_beta);
  if (const runner::JsonValue* g = v.find("pert_gentle"))
    s.pert_gentle = g->as_bool();
  s.loss_p = num_or(v, "loss_p", s.loss_p);
  s.jitter_max_delay = num_or(v, "jitter_max_delay", s.jitter_max_delay);
  s.reorder_p = num_or(v, "reorder_p", s.reorder_p);
  s.reorder_max_delay = num_or(v, "reorder_max_delay", s.reorder_max_delay);
  s.flap_first_down = num_or(v, "flap_first_down", s.flap_first_down);
  s.flap_down_for = num_or(v, "flap_down_for", s.flap_down_for);
  s.flap_period = num_or(v, "flap_period", s.flap_period);
  s.flap_count = int_or(v, "flap_count", s.flap_count);
  s.start_window = num_or(v, "start_window", s.start_window);
  s.warmup = num_or(v, "warmup", s.warmup);
  s.measure = num_or(v, "measure", s.measure);
  return s;
}

DumbbellConfig to_dumbbell(const Scenario& s) {
  if (s.topology != Topology::kDumbbell)
    throw std::logic_error("to_dumbbell called on a non-dumbbell scenario");
  DumbbellConfig cfg;
  cfg.scheme = s.scheme;
  cfg.bottleneck_bps = s.bottleneck_bps;
  cfg.rtt = s.rtt;
  cfg.num_fwd_flows = s.num_fwd_flows;
  cfg.num_rev_flows = s.num_rev_flows;
  cfg.num_web_sessions = s.num_web_sessions;
  cfg.buffer_pkts = s.buffer_pkts;
  cfg.nonproactive_fraction = s.nonproactive_fraction;
  cfg.start_window = s.start_window;
  cfg.seed = s.seed;
  cfg.pert.pmax = s.pert_pmax;
  cfg.pert.early_beta = s.pert_early_beta;
  cfg.pert.gentle = s.pert_gentle;
  cfg.impair.loss.p = s.loss_p;
  cfg.impair.jitter.max_delay = s.jitter_max_delay;
  cfg.impair.reorder.p = s.reorder_p;
  cfg.impair.reorder.max_delay = s.reorder_max_delay;
  if (s.has_flaps()) {
    cfg.impair.flap.first_down = s.flap_first_down;
    cfg.impair.flap.down_for = s.flap_down_for;
    cfg.impair.flap.period = s.flap_period;
    cfg.impair.flap.count = s.flap_count;
  }
  // Fuzz scenarios are short; a tight stall timeout turns a wedged
  // simulation into a structured StallError violation quickly.
  cfg.watchdog.stall_timeout = 30.0;
  return cfg;
}

MultiBottleneckConfig to_multi_bottleneck(const Scenario& s) {
  if (s.topology != Topology::kMultiBottleneck)
    throw std::logic_error(
        "to_multi_bottleneck called on a non-chain scenario");
  MultiBottleneckConfig cfg;
  cfg.scheme = s.scheme;
  cfg.num_routers = s.num_routers;
  cfg.hosts_per_cloud = s.hosts_per_cloud;
  cfg.router_link_bps = s.bottleneck_bps;
  // Spread the scenario RTT across the chain's per-hop propagation delays.
  cfg.router_link_delay =
      std::max(0.001, s.rtt / (2.0 * std::max(1, s.num_routers - 1)));
  cfg.buffer_pkts = s.buffer_pkts;
  cfg.start_window = s.start_window;
  cfg.seed = s.seed;
  cfg.pert.pmax = s.pert_pmax;
  cfg.pert.early_beta = s.pert_early_beta;
  cfg.pert.gentle = s.pert_gentle;
  cfg.watchdog.stall_timeout = 30.0;
  return cfg;
}

ScenarioOutcome run_scenario(const Scenario& s) {
  ScenarioOutcome out;
  if (s.topology == Topology::kDumbbell) {
    Dumbbell d(to_dumbbell(s));
    out.metrics = d.measure_window(s.warmup, s.measure);
    return out;
  }
  MultiBottleneck mb(to_multi_bottleneck(s));
  const std::vector<HopMetrics> hops = mb.measure_window(s.warmup, s.measure);
  // Fold the chain into one WindowMetrics: report the most loaded hop.
  out.metrics.duration = s.measure;
  for (const HopMetrics& h : hops) {
    if (h.utilization >= out.metrics.utilization) {
      out.metrics.utilization = h.utilization;
      out.metrics.avg_queue_pkts = h.avg_queue_pkts;
      out.metrics.norm_queue = h.norm_queue;
      out.metrics.drop_rate = h.drop_rate;
      out.metrics.jain = h.jain;
    }
  }
  return out;
}

}  // namespace pert::exp::fuzz
