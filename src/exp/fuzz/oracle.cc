#include "exp/fuzz/oracle.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "core/pert_params.h"
#include "fluid/pert_model.h"
#include "tcp/tcp_config.h"

namespace pert::exp::fuzz {

namespace {

OracleVerdict inapplicable(std::string why) {
  OracleVerdict v;
  v.applicable = false;
  v.why_inapplicable = std::move(why);
  return v;
}

std::string fmt(const char* pattern, double a, double b, double c) {
  char buf[160];
  std::snprintf(buf, sizeof buf, pattern, a, b, c);
  return buf;
}

}  // namespace

OracleVerdict check_against_fluid(const Scenario& s,
                                  const WindowMetrics& metrics) {
  // --- Applicability gates: the fluid model covers long-lived PERT flows
  // over a clean single bottleneck, nothing else.
  if (s.topology != Topology::kDumbbell)
    return inapplicable("multi-bottleneck topology");
  if (s.scheme != Scheme::kPert)
    return inapplicable("scheme is not plain PERT");
  if (s.has_impairments()) return inapplicable("impairments enabled");
  if (s.num_rev_flows > 0) return inapplicable("reverse traffic present");
  if (s.num_web_sessions > 0) return inapplicable("web background present");
  if (s.nonproactive_fraction > 0)
    return inapplicable("SACK mix present");
  if (s.num_fwd_flows < 4)
    return inapplicable("too few flows for the many-flow fluid limit");

  const tcp::TcpConfig tcp;  // scenarios use the default segment size
  const double capacity_pps =
      s.bottleneck_bps / (8.0 * static_cast<double>(tcp.seg_bytes()));

  fluid::PertModelParams p;
  p.rtt = s.rtt;
  p.capacity = capacity_pps;
  p.n_flows = static_cast<double>(s.num_fwd_flows);
  p.p_max = s.pert_pmax;
  // PERT thresholds are offsets above the propagation RTT; the model's
  // T_min/T_max are the same quantities in queueing-delay space.
  const core::PertParams pert;
  p.t_min = pert.tmin_offset;
  p.t_max = pert.tmax_offset;
  p.alpha = pert.srtt_alpha;
  // One smoothing update per packet: sampling interval ~ inter-packet gap
  // of one flow's share, bounded away from the integrator step.
  p.delta = std::clamp(p.n_flows / capacity_pps, 1e-4, 0.05);

  const fluid::Equilibrium eq = fluid::equilibrium(p);
  // Degenerate equilibria (window below one packet) are outside the
  // model's regime — the discrete simulator cannot track them.
  if (eq.window < 2.0)
    return inapplicable("equilibrium window below two packets");

  OracleVerdict v;
  v.applicable = true;

  // Integrate the DDE from the equilibrium point and take the steady-state
  // prediction as the time-average of the trajectory tail. In much of the
  // sampled parameter space the model settles into a bounded limit cycle
  // rather than the fixed point (Theorem 1 is only sufficient); the cycle's
  // mean still predicts the packet system's mean queueing delay, and the
  // cycle's amplitude widens the tolerance band below.
  const double horizon = std::max(30.0, 200.0 * s.rtt);
  const auto traj = fluid::simulate(p, horizon,
                                    {eq.window, eq.t_queue, eq.t_queue},
                                    1e-3, 0.05);
  v.model_tail_error = fluid::tail_window_error(traj, p);
  const std::size_t tail_start = traj.size() / 2;
  double tq_sum = 0, tq_min = traj.back().tq_inst, tq_max = tq_min;
  double w_sum = 0;
  for (std::size_t i = tail_start; i < traj.size(); ++i) {
    tq_sum += traj[i].tq_inst;
    tq_min = std::min(tq_min, traj[i].tq_inst);
    tq_max = std::max(tq_max, traj[i].tq_inst);
    w_sum += traj[i].window;
  }
  const double n_tail = static_cast<double>(traj.size() - tail_start);
  const double tq_mean = tq_sum / n_tail;
  const double w_mean = w_sum / n_tail;
  // Model-health gate: a limit cycle is usable, a runaway is not. The
  // cycle orbits the equilibrium, so its mean window must stay near W*.
  if (!(std::abs(w_mean - eq.window) < 0.6 * eq.window)) {
    v.applicable = false;
    v.why_inapplicable = fmt(
        "fluid trajectory diverges from equilibrium (mean window %.1f vs "
        "W* %.1f)",
        w_mean, eq.window, 0);
    return v;
  }

  // --- Band 1: steady-state mean queueing delay, one-sided. A congestion
  // response that is too aggressive (dead response curve, mis-scaled
  // thresholds) builds a standing queue far *above* the fluid mean — that
  // is what this band catches. Sitting *below* the fluid mean is not a
  // bug: with large per-flow BDPs the quantized packet system keeps the
  // queue near empty while the link stays busy (better than fluid), and a
  // window collapse shows up in the utilization floor below instead.
  // The band is deliberately wide — this is a bug oracle, not an accuracy
  // benchmark. Floors: several packet times (so coarse regimes with few
  // packets in flight don't false-positive) and the model's own
  // oscillation half-amplitude.
  v.predicted_delay_s = tq_mean;
  v.observed_delay_s = metrics.avg_queue_pkts / capacity_pps;
  v.delay_tolerance_s = std::max({0.8 * v.predicted_delay_s, 0.004,
                                  6.0 / capacity_pps,
                                  0.5 * (tq_max - tq_min)});
  if (v.observed_delay_s - v.predicted_delay_s > v.delay_tolerance_s) {
    v.ok = false;
    v.failure = fmt(
        "queueing delay diverges from fluid equilibrium: observed %.4fs, "
        "predicted %.4fs (tolerance %.4fs)",
        v.observed_delay_s, v.predicted_delay_s, v.delay_tolerance_s);
    return v;
  }

  // --- Band 2: utilization. The fluid model keeps the bottleneck busy at
  // equilibrium; a sender whose decrease policy collapses the window (or
  // whose response curve is dead) shows up here first. Clean long-RTT
  // corners of the sampled space bottom out just under 0.80, the planted
  // broken sender tops out under 0.75 — the floor sits between.
  v.predicted_utilization = 1.0;
  v.utilization_floor = 0.75;
  v.observed_utilization = metrics.utilization;
  if (v.observed_utilization < v.utilization_floor) {
    v.ok = false;
    v.failure = fmt(
        "utilization collapsed: observed %.3f < floor %.3f (fluid predicts "
        "~%.2f)",
        v.observed_utilization, v.utilization_floor, v.predicted_utilization);
  }
  return v;
}

}  // namespace pert::exp::fuzz
