// Randomized scenario fuzzer with shrinking and self-contained repro
// bundles.
//
// Loop: generate a seeded scenario -> run it with the invariant checker on
// -> classify. A violation is any of:
//   - "invariant": the simulation tripped an InvariantViolation,
//   - "stall":     the watchdog declared no progress,
//   - "crash":     any other exception escaped the simulation,
//   - "oracle":    an impairment-free PERT scenario landed outside the
//                  fluid-model tolerance bands (see oracle.h).
//
// Violations are shrunk by a greedy, seed-preserving minimizer (halve flow
// counts, halve the measurement window, drop impairments and background
// traffic one at a time — keeping each step only if the violation survives)
// and written as a JSON repro bundle that `pert_sim repro=<file>` replays.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "dist/shard.h"
#include "exp/fuzz/generator.h"
#include "exp/fuzz/oracle.h"
#include "exp/fuzz/scenario.h"

namespace pert::exp::fuzz {

/// Repro-bundle schema version, stored in the "pert_fuzz_repro" field.
/// Bump when the bundle layout or the scenario vocabulary changes meaning;
/// replay warns (but still tries) on a version mismatch.
inline constexpr std::uint64_t kReproSchemaVersion = 2;

/// Build stamp recorded in bundles ("git describe" at configure time), so a
/// replay on a different build can explain a non-reproducing violation.
const char* build_stamp();

struct Violation {
  Scenario scenario;       ///< shrunk scenario that still violates
  Scenario original;       ///< as generated, before shrinking
  std::string kind;        ///< "invariant" | "stall" | "crash" | "oracle"
  std::string detail;      ///< exception text or oracle failure band
  std::uint64_t iteration = 0;
  std::string bundle_path; ///< repro bundle on disk ("" if not written)
};

struct FuzzOptions {
  std::uint64_t seed = 1;          ///< base seed; iteration i derives from it
  std::uint64_t iterations = 25;
  /// Stop early once this much wall time has elapsed (0 = no budget).
  double time_budget_s = 0;
  GeneratorBounds bounds;
  /// Directory for repro bundles ("" disables writing them).
  std::string repro_dir;
  /// Shrink violations before reporting (on by default; the shrinker
  /// re-runs the scenario several times, so tests with a time budget can
  /// turn it off).
  bool shrink = true;
  /// Test-only fault injection: applied to every generated scenario before
  /// it runs. This is how the acceptance test plants an intentionally
  /// broken sender (e.g. early_beta ~ 1) and proves the oracle finds it.
  std::function<void(Scenario&)> mutate;
  bool verbose = false;            ///< one stderr line per iteration
  /// Deterministic slice for distributed fuzzing: only iterations i with
  /// i % count == index run. Seeds derive from the iteration index, so the
  /// union of all shards reproduces the unsharded campaign exactly.
  dist::ShardSpec shard;
};

struct FuzzSummary {
  std::uint64_t iterations_run = 0;
  std::uint64_t oracle_checked = 0;  ///< scenarios the oracle could judge
  std::vector<Violation> violations;
};

/// Runs the fuzz loop. Never throws on scenario failures (they become
/// violations); throws only on infrastructure errors (unwritable repro dir).
FuzzSummary run_fuzz(const FuzzOptions& opts);

/// Classifies one scenario: runs it and, when applicable, applies the
/// oracle. Returns the violation kind ("" = clean) and detail text.
std::pair<std::string, std::string> classify_scenario(const Scenario& s);

/// Greedy seed-preserving minimizer: returns the smallest scenario found
/// that still produces the same violation kind.
Scenario shrink_scenario(const Scenario& s, const std::string& kind);

/// Writes a self-contained repro bundle; returns its path.
std::string write_repro_bundle(const Violation& v, const std::string& dir);

/// Replays a repro bundle: re-runs the embedded scenario and re-classifies.
/// Returns true when the recorded violation kind reproduces; prints a
/// human-readable account to stderr when `verbose`.
bool replay_repro_bundle(const std::string& path, bool verbose = true);

}  // namespace pert::exp::fuzz
