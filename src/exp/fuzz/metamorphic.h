// Metamorphic self-validation: runs a scenario against transformed twins
// whose results are *predictable from the original run* without any oracle.
//
// Four relations, each asserting a symmetry the simulator must have:
//   - "seed-stream": the observability layer (tracing, sampling, metric
//     registry) draws from no seeded RNG stream, so running the identical
//     scenario fully observed must reproduce the un-observed metrics
//     byte-for-byte. Re-running the baseline also pins plain determinism.
//   - "time-shift": shifting every flow/web start (and the flap schedule)
//     later by a constant, and measuring the same window shifted by the
//     same constant, must not change what happens. Compared within
//     tolerance bands: event times differ by ulps after the shift, which a
//     chaotic packet system amplifies into trajectory noise, but any *real*
//     dependence on absolute time produces gross differences.
//   - "relabel": flow ids are labels carried in packets; adding a constant
//     to every id must reproduce the metrics byte-for-byte.
//   - "rescale": halving every time dimension while doubling every rate
//     (k = 2, so each scaling is an exact IEEE-754 exponent shift) must
//     reproduce packet-for-packet dynamics: identical drop/mark counters,
//     identical dimensionless metrics, goodput exactly doubled. Applies to
//     schemes whose control laws are scale-free (PERT, plain SACK); the
//     router-AQM discretizations re-derive their gains from the link and
//     are checked by their own unit tests instead.
//
// A failed relation means the simulator broke a symmetry no parameter
// choice should break — the strongest correctness signal available without
// a second implementation to differ against.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "exp/fuzz/generator.h"
#include "exp/fuzz/scenario.h"

namespace pert::exp::fuzz {

struct RelationResult {
  std::string relation;    ///< "seed-stream" | "time-shift" | "relabel" | "rescale"
  bool applicable = true;  ///< false: scenario shape outside the relation's domain
  bool ok = true;
  std::string detail;      ///< failure description (metric, got, want)
};

/// Runs the scenario and every applicable relation twin. Scenario failures
/// (invariant violations, crashes) surface as a failed relation with the
/// exception text in `detail`.
std::vector<RelationResult> check_relations(const Scenario& s);

/// The degenerate-corner scenario family: 1-packet buffers, near-zero and
/// huge RTTs, one fat flow, many starved flows, back-to-back link flaps.
/// Deterministic in `base_seed`; each corner derives its own seed.
std::vector<Scenario> corner_scenarios(std::uint64_t base_seed);

struct MetamorphicOptions {
  std::uint64_t seed = 1;
  std::uint64_t scenarios = 20;  ///< generated scenarios to check
  /// Stop early once this much wall time has elapsed (0 = no budget).
  double time_budget_s = 0;
  bool include_corners = true;   ///< also run the corner family (once)
  GeneratorBounds bounds;
  bool verbose = false;
};

struct MetamorphicFailure {
  Scenario scenario;
  RelationResult result;
};

struct MetamorphicSummary {
  std::uint64_t scenarios_run = 0;
  std::uint64_t relations_checked = 0;  ///< applicable relation evaluations
  std::vector<MetamorphicFailure> failures;
};

/// Generates `scenarios` seeded scenarios (shorter windows than the plain
/// fuzzer: each scenario runs up to five times), prepends the corner family
/// when asked, and checks every applicable relation on each.
MetamorphicSummary run_metamorphic(const MetamorphicOptions& opts);

}  // namespace pert::exp::fuzz
