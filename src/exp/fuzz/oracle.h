// Differential oracle: cross-checks a packet-level scenario run against the
// Section 5 fluid model.
//
// For impairment-free, PERT-only dumbbell scenarios the DDE model's
// equilibrium (eq. (9)) predicts the steady-state queueing delay
// T_q* = T_min + p*/L_PERT and near-full utilization. The packet simulator
// must land inside a tolerance band around those predictions — a sender
// whose congestion response is broken (wrong decrease factor, dead response
// curve) diverges from the fluid prediction long before it trips a hard
// invariant, which is exactly the bug class this oracle exists to catch.
//
// The oracle refuses to judge scenarios outside the model's assumptions
// (applicable=false): non-PERT schemes, impairments, background/reverse
// traffic, tiny flow counts, or parameter corners where the fluid model
// itself does not converge (checked by integrating the DDE and requiring a
// small tail window error).
#pragma once

#include <string>

#include "exp/fuzz/scenario.h"

namespace pert::exp::fuzz {

struct OracleVerdict {
  /// False when the scenario violates a model assumption; `ok` is then
  /// meaningless and `why_inapplicable` says which gate failed.
  bool applicable = false;
  std::string why_inapplicable;

  bool ok = true;          ///< simulation within the tolerance bands
  std::string failure;     ///< human-readable band violation when !ok

  double predicted_delay_s = 0;  ///< fluid T_q* - T_min-relative queueing
  double observed_delay_s = 0;   ///< avg_queue_pkts / capacity_pps
  double delay_tolerance_s = 0;
  double predicted_utilization = 1.0;
  double observed_utilization = 0;
  double utilization_floor = 0;
  double model_tail_error = 0;   ///< DDE convergence metric (gate)
};

/// Cross-checks `metrics` (from run_scenario) against the fluid model's
/// steady-state prediction for `s`.
OracleVerdict check_against_fluid(const Scenario& s,
                                  const WindowMetrics& metrics);

}  // namespace pert::exp::fuzz
