// Seeded scenario generator: samples randomized but paper-plausible
// scenarios. Deterministic — one seed, one scenario — so any generated
// scenario is reconstructible from its seed alone, and a repro bundle that
// records the seed re-derives the identical inputs.
#pragma once

#include <cstdint>

#include "exp/fuzz/scenario.h"

namespace pert::exp::fuzz {

/// Sampling bounds. Defaults keep each scenario a few seconds of wall time
/// (small bandwidth x short window) while staying inside the regimes the
/// paper studies (Section 2.2 dimensioning, Section 4 impairment ablations).
struct GeneratorBounds {
  double min_bps = 8e6;
  double max_bps = 40e6;
  double min_rtt = 0.030;
  double max_rtt = 0.160;
  std::int32_t min_flows = 4;
  std::int32_t max_flows = 20;
  /// Probability the scenario is a multi-bottleneck chain (vs dumbbell).
  double p_chain = 0.15;
  /// Probability of each impairment class being switched on.
  double p_loss = 0.25;
  double p_jitter = 0.2;
  double p_reorder = 0.15;
  /// Probability of reverse traffic / web background / a SACK mix.
  double p_rev_flows = 0.2;
  double p_web = 0.2;
  double p_sack_mix = 0.25;
  /// Probability of a non-default scheme (PERT-PI or pure SACK) instead of
  /// plain PERT.
  double p_alt_scheme = 0.3;
  double warmup = 12.0;
  double measure = 8.0;
};

/// Samples one scenario from `seed`. Identical (seed, bounds) always yields
/// an identical Scenario, independent of platform and call history.
Scenario generate_scenario(std::uint64_t seed, const GeneratorBounds& b = {});

}  // namespace pert::exp::fuzz
