// Self-contained randomized-scenario description for the fuzzer.
//
// A Scenario is everything needed to rebuild and re-run one randomized
// experiment bit-identically: topology (dumbbell or multi-bottleneck chain),
// link/flow dimensions, the PERT knobs the fuzzer perturbs, impairments, and
// the measurement window. It serializes to JSON (runner::JsonValue), which
// is what makes fuzzer repro bundles replayable by `pert_sim repro=<file>`
// on a different machine or a later build.
#pragma once

#include <cstdint>
#include <string>

#include "exp/dumbbell.h"
#include "exp/multi_bottleneck.h"
#include "exp/scheme.h"
#include "runner/json.h"

namespace pert::exp::fuzz {

enum class Topology { kDumbbell, kMultiBottleneck };

std::string to_string(Topology t);
Topology topology_from_string(const std::string& s);

struct Scenario {
  std::uint64_t seed = 1;  ///< drives every RNG stream in the simulation
  Topology topology = Topology::kDumbbell;

  Scheme scheme = Scheme::kPert;
  double bottleneck_bps = 20e6;
  double rtt = 0.060;              ///< two-way propagation delay, seconds
  std::int32_t num_fwd_flows = 8;
  std::int32_t num_rev_flows = 0;
  std::int32_t num_web_sessions = 0;
  std::int32_t buffer_pkts = 0;    ///< 0 = auto (BDP rule)
  /// Fraction of forward flows running plain SACK instead of the scheme
  /// under test (the PERT/SACK co-existence mix).
  double nonproactive_fraction = 0.0;

  /// Multi-bottleneck chain dimensions (ignored for dumbbell).
  std::int32_t num_routers = 3;
  std::int32_t hosts_per_cloud = 4;

  /// PERT knobs the fuzzer perturbs (and the fault-injection hook mutates).
  double pert_pmax = 0.05;
  double pert_early_beta = 0.35;
  bool pert_gentle = true;

  /// Impairments (all zero = clean scenario, eligible for the fluid oracle).
  double loss_p = 0.0;             ///< Bernoulli drop probability
  double jitter_max_delay = 0.0;   ///< uniform extra delay bound, seconds
  double reorder_p = 0.0;          ///< hold-back probability
  double reorder_max_delay = 0.0;  ///< hold duration bound, seconds

  /// Bottleneck link flaps (down_for = 0 disables). The degenerate-corner
  /// family uses these for its back-to-back outage scenarios.
  double flap_first_down = 0.0;    ///< absolute time of the first outage
  double flap_down_for = 0.0;      ///< outage duration, seconds
  double flap_period = 0.0;        ///< down-edge spacing; 0 = single outage
  std::int32_t flap_count = 0;     ///< number of outages

  /// Measurement window.
  double start_window = 2.0;  ///< flow start times uniform in [0, this)
  double warmup = 15.0;       ///< seconds before measurement begins
  double measure = 10.0;      ///< measured seconds

  bool has_impairments() const {
    return loss_p > 0 || jitter_max_delay > 0 ||
           (reorder_p > 0 && reorder_max_delay > 0) || has_flaps();
  }

  bool has_flaps() const { return flap_down_for > 0 && flap_count > 0; }

  friend bool operator==(const Scenario&, const Scenario&) = default;
};

runner::JsonValue to_json(const Scenario& s);
Scenario scenario_from_json(const runner::JsonValue& v);

/// Materializes the dumbbell configuration (topology must be kDumbbell).
DumbbellConfig to_dumbbell(const Scenario& s);
/// Materializes the chain configuration (topology must be kMultiBottleneck).
MultiBottleneckConfig to_multi_bottleneck(const Scenario& s);

struct ScenarioOutcome {
  /// Dumbbell: the bottleneck window metrics. Multi-bottleneck: the worst
  /// hop by utilization, with avg_queue_pkts from the most loaded hop.
  WindowMetrics metrics;
};

/// Builds and runs the scenario with the standard invariant checker enabled
/// (Scenario runs never disable it). Throws sim::InvariantViolation /
/// sim::StallError / anything the simulation throws — classification is the
/// caller's job.
ScenarioOutcome run_scenario(const Scenario& s);

}  // namespace pert::exp::fuzz
