// Multi-bottleneck chain (paper Figure 10): routers R1..R6 in a line; each
// router has a cloud of hosts. Cloud i sends to cloud i+1 (i = 1..5), and
// cloud 1 additionally sends long-haul traffic to cloud 6, so every inter-
// router link is a potential bottleneck shared by one-hop and six-hop flows.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "exp/dumbbell.h"
#include "exp/scheme.h"
#include "net/network.h"

namespace pert::exp {

struct MultiBottleneckConfig {
  /// End-host CC module + hop-queue discipline + ECN. Assignable from a
  /// legacy `Scheme` enumerator or a parse_scheme_spec() result.
  SchemeSpec scheme = Scheme::kPert;
  std::int32_t num_routers = 6;
  std::int32_t hosts_per_cloud = 20;
  double router_link_bps = 150e6;
  double router_link_delay = 0.005;
  double access_bps = 1e9;
  double access_delay = 0.005;
  std::int32_t buffer_pkts = 0;  ///< 0 = BDP of one router hop
  double start_window = 50.0;
  std::uint64_t seed = 1;
  tcp::TcpConfig tcp;
  core::PertParams pert;
  /// Simulation watchdog (invariants + stall detector); enabled by default.
  sim::WatchdogOptions watchdog;
  /// Observability (tracing, metric registry, sampling). Off by default.
  obs::ObsConfig obs;
  /// Parallel engine worker threads. 0 (default) = classic single-scheduler
  /// path. >= 1 shards the chain one-shard-per-router-cloud (router i plus
  /// every host homed on it) and runs the conservative engine with the
  /// router-link propagation delay as lookahead; requires
  /// router_link_delay > 0. Results are byte-identical for every value.
  std::int32_t sim_threads = 0;

  /// Rejects an out-of-domain chain topology with sim::ConfigError before
  /// any node is built, including the nested TCP/PERT configs.
  void validate() const;
};

struct HopMetrics {
  double avg_queue_pkts = 0;
  double norm_queue = 0;
  double drop_rate = 0;
  double utilization = 0;
  double jain = 0;  ///< over the flows whose path starts at this hop
};

class MultiBottleneck {
 public:
  explicit MultiBottleneck(MultiBottleneckConfig cfg);

  /// Runs warmup then a measurement window; returns one entry per router
  /// pair (R1-R2, ..., R5-R6).
  std::vector<HopMetrics> measure_window(sim::Time warmup, sim::Time measure);

  net::Network& network() noexcept { return net_; }
  std::int32_t num_hops() const {
    return static_cast<std::int32_t>(hop_links_.size());
  }

  /// The installed watchdog, or nullptr when cfg.watchdog.enabled is false.
  sim::InvariantChecker* watchdog() noexcept { return checker_.get(); }

  /// The scenario's observability hub (tracer, registry, probes).
  obs::Observability& obs() noexcept { return obs_; }
  const obs::Observability& obs() const noexcept { return obs_; }

  /// Installs a probe (not owned); samples carry the hop index as their id.
  void add_probe(obs::Probe* p) { obs_.add_probe(p); }

 private:
  tcp::TcpSender* make_sender(net::FlowId flow);
  std::unique_ptr<net::Queue> make_queue();
  void sample_tick();
  void maybe_start_sampler();

  MultiBottleneckConfig cfg_;
  net::Network net_;
  std::int32_t buffer_pkts_ = 0;
  std::vector<net::Node*> routers_;
  std::vector<net::Link*> hop_links_;  ///< forward direction R_i -> R_{i+1}
  /// senders grouped by source hop: index 0..4 = cloud i -> cloud i+1,
  /// index 5 = cloud 1 -> cloud 6 long-haul.
  std::vector<std::vector<tcp::TcpSender*>> groups_;
  /// Struct-of-arrays backing for per-flow hot state: arena i serves the
  /// senders homed on router i when sharded; a single arena otherwise.
  std::vector<std::unique_ptr<tcp::FlowArena>> arenas_;
  /// Arena for the sender currently under construction (set in add_group,
  /// consumed by make_sender).
  tcp::FlowArena* cur_arena_ = nullptr;
  std::unique_ptr<sim::InvariantChecker> checker_;

  obs::Observability obs_;
  /// One recorder per hop, replacing the old ad-hoc q0/l0/acked0 snapshot
  /// vectors inside run().
  std::vector<WindowRecorder> recorders_;
  sim::Timer sampler_;
  bool sampler_started_ = false;
};

}  // namespace pert::exp
