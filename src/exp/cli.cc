#include "exp/cli.h"

#include <charconv>
#include <cstdlib>
#include <stdexcept>
#include <utility>

namespace pert::exp {

namespace {

double parse_num(std::string_view s, std::string_view what) {
  char* end = nullptr;
  const std::string buf(s);
  const double v = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size() || buf.empty())
    throw std::invalid_argument("bad number for " + std::string(what) + ": " +
                                buf);
  return v;
}

bool parse_bool(std::string_view s, std::string_view what) {
  if (s == "1" || s == "true" || s == "on") return true;
  if (s == "0" || s == "false" || s == "off") return false;
  throw std::invalid_argument("bad boolean for " + std::string(what) + ": " +
                              std::string(s));
}

std::vector<double> parse_ms_list(std::string_view s) {
  std::vector<double> out;
  std::size_t pos = 0;
  while (pos <= s.size()) {
    const std::size_t comma = s.find(',', pos);
    const std::string_view tok =
        s.substr(pos, comma == std::string_view::npos ? s.size() - pos
                                                      : comma - pos);
    out.push_back(parse_num(tok, "rtts element") * 1e-3);
    if (comma == std::string_view::npos) break;
    pos = comma + 1;
  }
  return out;
}

double parse_prob(std::string_view s, std::string_view what) {
  const double v = parse_num(s, what);
  if (v < 0.0 || v > 1.0)
    throw std::invalid_argument(std::string(what) + " must be in [0,1], got " +
                                std::string(s));
  return v;
}

double parse_nonneg(std::string_view s, std::string_view what) {
  const double v = parse_num(s, what);
  if (v < 0.0)
    throw std::invalid_argument(std::string(what) + " must be >= 0, got " +
                                std::string(s));
  return v;
}

/// Splits "k=v,k=v,..." into pairs; every element must contain '='.
std::vector<std::pair<std::string_view, std::string_view>> split_kv(
    std::string_view s, std::string_view what) {
  std::vector<std::pair<std::string_view, std::string_view>> out;
  std::size_t pos = 0;
  while (pos <= s.size()) {
    const std::size_t comma = s.find(',', pos);
    const std::string_view tok =
        s.substr(pos, comma == std::string_view::npos ? s.size() - pos
                                                      : comma - pos);
    const std::size_t eq = tok.find('=');
    if (eq == std::string_view::npos || eq == 0)
      throw std::invalid_argument("expected key=value in " + std::string(what) +
                                  " parameters, got: " + std::string(tok));
    out.emplace_back(tok.substr(0, eq), tok.substr(eq + 1));
    if (comma == std::string_view::npos) break;
    pos = comma + 1;
  }
  return out;
}

}  // namespace

void parse_impairment(std::string_view spec, net::ImpairmentConfig& out) {
  const std::size_t colon = spec.find(':');
  const std::string_view model =
      colon == std::string_view::npos ? spec : spec.substr(0, colon);
  const std::string_view params =
      colon == std::string_view::npos ? std::string_view{}
                                      : spec.substr(colon + 1);
  if (model.empty() || params.empty())
    throw std::invalid_argument(
        "impair needs <model>:<key=value,...>, got: " + std::string(spec));
  const auto kvs = split_kv(params, "impair " + std::string(model));

  if (model == "loss") {
    for (const auto& [k, v] : kvs) {
      if (k == "p") out.loss.p = parse_prob(v, "loss p");
      else
        throw std::invalid_argument("unknown impair loss key: " +
                                    std::string(k));
    }
  } else if (model == "gilbert") {
    for (const auto& [k, v] : kvs) {
      if (k == "enter")
        out.gilbert.p_enter_bad = parse_prob(v, "gilbert enter");
      else if (k == "exit")
        out.gilbert.p_exit_bad = parse_prob(v, "gilbert exit");
      else if (k == "loss_bad")
        out.gilbert.loss_bad = parse_prob(v, "gilbert loss_bad");
      else if (k == "loss_good")
        out.gilbert.loss_good = parse_prob(v, "gilbert loss_good");
      else
        throw std::invalid_argument("unknown impair gilbert key: " +
                                    std::string(k));
    }
    if (out.gilbert.p_enter_bad > 0 && out.gilbert.p_exit_bad <= 0)
      throw std::invalid_argument(
          "impair gilbert: exit must be > 0 when enter > 0");
  } else if (model == "reorder") {
    for (const auto& [k, v] : kvs) {
      if (k == "p") out.reorder.p = parse_prob(v, "reorder p");
      else if (k == "min_ms")
        out.reorder.min_delay = parse_nonneg(v, "reorder min_ms") * 1e-3;
      else if (k == "max_ms")
        out.reorder.max_delay = parse_nonneg(v, "reorder max_ms") * 1e-3;
      else
        throw std::invalid_argument("unknown impair reorder key: " +
                                    std::string(k));
    }
    if (out.reorder.p > 0 && out.reorder.max_delay <= 0)
      throw std::invalid_argument("impair reorder: max_ms must be > 0");
    if (out.reorder.min_delay > out.reorder.max_delay)
      throw std::invalid_argument("impair reorder: min_ms > max_ms");
  } else if (model == "jitter") {
    for (const auto& [k, v] : kvs) {
      if (k == "max_ms")
        out.jitter.max_delay = parse_nonneg(v, "jitter max_ms") * 1e-3;
      else
        throw std::invalid_argument("unknown impair jitter key: " +
                                    std::string(k));
    }
  } else if (model == "biterror") {
    for (const auto& [k, v] : kvs) {
      if (k == "ber") out.bit_error.ber = parse_prob(v, "biterror ber");
      else
        throw std::invalid_argument("unknown impair biterror key: " +
                                    std::string(k));
    }
  } else if (model == "flap") {
    for (const auto& [k, v] : kvs) {
      if (k == "first") out.flap.first_down = parse_nonneg(v, "flap first");
      else if (k == "down")
        out.flap.down_for = parse_nonneg(v, "flap down");
      else if (k == "period")
        out.flap.period = parse_nonneg(v, "flap period");
      else if (k == "count")
        out.flap.count = static_cast<std::int32_t>(parse_nonneg(v, "flap count"));
      else
        throw std::invalid_argument("unknown impair flap key: " +
                                    std::string(k));
    }
    if (out.flap.down_for <= 0)
      throw std::invalid_argument("impair flap: down must be > 0");
    if (out.flap.count > 1 && out.flap.period <= 0)
      throw std::invalid_argument(
          "impair flap: period must be > 0 when count > 1");
  } else {
    throw std::invalid_argument(
        "unknown impair model: " + std::string(model) +
        " (expected loss|gilbert|reorder|jitter|biterror|flap)");
  }
}

double parse_rate(std::string_view s) {
  if (s.empty()) throw std::invalid_argument("empty rate");
  double mult = 1.0;
  std::string_view num = s;
  switch (s.back()) {
    case 'k': case 'K': mult = 1e3; num = s.substr(0, s.size() - 1); break;
    case 'M': mult = 1e6; num = s.substr(0, s.size() - 1); break;
    case 'G': mult = 1e9; num = s.substr(0, s.size() - 1); break;
    default: break;
  }
  const double v = parse_num(num, "rate") * mult;
  if (v <= 0) throw std::invalid_argument("rate must be positive");
  return v;
}

Scheme parse_scheme(std::string_view s) {
  if (s == "pert") return Scheme::kPert;
  if (s == "pert-pi") return Scheme::kPertPi;
  if (s == "pert-rem") return Scheme::kPertRem;
  if (s == "vegas") return Scheme::kVegas;
  if (s == "sack" || s == "sack-droptail") return Scheme::kSackDroptail;
  if (s == "sack-red") return Scheme::kSackRedEcn;
  if (s == "sack-pi") return Scheme::kSackPiEcn;
  if (s == "sack-rem") return Scheme::kSackRemEcn;
  if (s == "sack-avq") return Scheme::kSackAvqEcn;
  throw std::invalid_argument("unknown scheme: " + std::string(s));
}

CliOptions parse_cli(const std::vector<std::string>& args) {
  CliOptions o;
  for (const std::string& tok : args) {
    const std::size_t eq = tok.find('=');
    if (eq == std::string::npos)
      throw std::invalid_argument("expected key=value, got: " + tok);
    const std::string_view key = std::string_view(tok).substr(0, eq);
    const std::string_view val = std::string_view(tok).substr(eq + 1);

    if (key == "scheme") {
      o.schemes.clear();
      std::size_t pos = 0;
      while (pos <= val.size()) {
        const std::size_t comma = val.find(',', pos);
        const std::string_view one =
            val.substr(pos, comma == std::string_view::npos ? val.size() - pos
                                                            : comma - pos);
        o.schemes.push_back(parse_scheme_spec(one));
        if (comma == std::string_view::npos) break;
        pos = comma + 1;
      }
      o.cfg.scheme = o.schemes.front();
    } else if (key == "bw") {
      o.cfg.bottleneck_bps = parse_rate(val);
    } else if (key == "rtt") {
      o.cfg.rtt = parse_num(val, key) * 1e-3;
    } else if (key == "rtts") {
      o.cfg.flow_rtts = parse_ms_list(val);
    } else if (key == "flows") {
      o.cfg.num_fwd_flows = static_cast<std::int32_t>(parse_num(val, key));
    } else if (key == "rev_flows") {
      o.cfg.num_rev_flows = static_cast<std::int32_t>(parse_num(val, key));
    } else if (key == "web") {
      o.cfg.num_web_sessions = static_cast<std::int32_t>(parse_num(val, key));
    } else if (key == "buffer") {
      o.cfg.buffer_pkts = static_cast<std::int32_t>(parse_num(val, key));
    } else if (key == "seed") {
      o.cfg.seed = static_cast<std::uint64_t>(parse_num(val, key));
    } else if (key == "warmup") {
      o.warmup = parse_num(val, key);
    } else if (key == "measure") {
      o.measure = parse_num(val, key);
    } else if (key == "start_window") {
      o.cfg.start_window = parse_num(val, key);
    } else if (key == "sack_fraction") {
      o.cfg.nonproactive_fraction = parse_num(val, key);
    } else if (key == "beta") {
      o.cfg.pert.early_beta = parse_num(val, key);
    } else if (key == "pmax") {
      o.cfg.pert.pmax = parse_num(val, key);
    } else if (key == "gentle") {
      o.cfg.pert.gentle = parse_bool(val, key);
    } else if (key == "owd") {
      o.cfg.pert.use_one_way_delay = parse_bool(val, key);
    } else if (key == "adaptive") {
      o.cfg.pert.adaptive_pmax = parse_bool(val, key);
    } else if (key == "trace_out") {
      o.trace_out = val;
    } else if (key == "series_out") {
      o.series_out = val;
    } else if (key == "series_interval") {
      o.series_interval = parse_num(val, key) * 1e-3;
    } else if (key == "trace") {
      o.trace_json = val;
      o.cfg.obs.trace.enabled = true;
    } else if (key == "metrics") {
      o.metrics_json = val;
      o.cfg.obs.metrics = true;
    } else if (key == "obs_interval") {
      const double ms = parse_num(val, key);
      if (ms <= 0) throw std::invalid_argument("obs_interval must be > 0");
      o.cfg.obs.sample_interval = ms * 1e-3;
    } else if (key == "impair") {
      parse_impairment(val, o.cfg.impair);
    } else {
      throw std::invalid_argument("unknown key: " + std::string(key));
    }
  }
  if (o.cfg.num_fwd_flows <= 0)
    throw std::invalid_argument("flows must be >= 1");
  if (o.warmup < 0 || o.measure <= 0)
    throw std::invalid_argument("warmup/measure out of range");
  return o;
}

std::string cli_usage() {
  return "usage: pert_sim [--jobs N] [--json PATH] [--journal PATH "
         "[--resume]] key=value ...\n"
         "       pert_sim repro=<bundle.json>   (replay a fuzzer repro "
         "bundle)\n"
         "       pert_sim schemes               (list CC modules + queue "
         "disciplines)\n"
         "  scheme=pert|pert-pi|pert-rem|vegas|sack|sack-red|sack-pi|"
         "sack-rem|sack-avq\n"
         "         or any cc/qdisc pair, e.g. scheme=cubic/codel, "
         "scheme=dctcp/red+ecn\n"
         "         (comma list runs one scenario per scheme, in parallel "
         "with --jobs)\n"
         "  bw=150M rtt=60 [rtts=12,24,36] flows=50 [rev_flows=0] [web=0]\n"
         "  [buffer=<pkts>] [seed=1] [warmup=20] [measure=40] "
         "[start_window=10]\n"
         "  [sack_fraction=0] [beta=0.35] [pmax=0.05] [gentle=1] [owd=0] "
         "[adaptive=0]\n"
         "  [trace_out=trace.csv] [series_out=queue.csv] "
         "[series_interval=100]\n"
         "  [trace=events.json] [metrics=metrics.json] [obs_interval=100]\n"
         "  [impair=loss:p=0.01] [impair=gilbert:enter=,exit=,loss_bad=,"
         "loss_good=]\n"
         "  [impair=reorder:p=,min_ms=,max_ms=] [impair=jitter:max_ms=]\n"
         "  [impair=biterror:ber=] [impair=flap:first=,down=,period=,count=]\n";
}

}  // namespace pert::exp
