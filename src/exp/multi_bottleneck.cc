#include "exp/multi_bottleneck.h"

#include <algorithm>

#include "exp/invariants.h"
#include "net/qdisc_registry.h"
#include "sim/validate.h"
#include "stats/stats.h"
#include "tcp/cc_registry.h"

namespace pert::exp {

namespace {
constexpr std::int32_t kPort = 1;
}

void MultiBottleneckConfig::validate() const {
  ensure_scheme_modules();
  if (tcp::CcRegistry::instance().find(scheme.cc) == nullptr ||
      net::QdiscRegistry::instance().find(scheme.qdisc) == nullptr)
    throw sim::ConfigError(
        "MultiBottleneckConfig: unknown scheme '" + scheme.cc + "/" +
            scheme.qdisc + "'",
        "component=MultiBottleneckConfig param=scheme\n");
  // Below 3 routers there is no "middle" hop and the long-haul group
  // degenerates into the one-hop group; the chain topology needs >= 3.
  sim::require_at_least("MultiBottleneckConfig", "num_routers", num_routers, 3);
  sim::require_at_least("MultiBottleneckConfig", "hosts_per_cloud",
                        hosts_per_cloud, 1);
  sim::require_positive("MultiBottleneckConfig", "router_link_bps",
                        router_link_bps);
  sim::require_non_negative("MultiBottleneckConfig", "router_link_delay",
                            router_link_delay);
  sim::require_positive("MultiBottleneckConfig", "access_bps", access_bps);
  sim::require_non_negative("MultiBottleneckConfig", "access_delay",
                            access_delay);
  sim::require_at_least("MultiBottleneckConfig", "buffer_pkts", buffer_pkts,
                        0);
  sim::require_non_negative("MultiBottleneckConfig", "start_window",
                            start_window);
  sim::require_at_least("MultiBottleneckConfig", "sim_threads", sim_threads,
                        0);
  if (sim_threads > 0) {
    // Router links are the shard boundaries: their propagation delay is the
    // engine's lookahead and must be strictly positive.
    sim::require_positive("MultiBottleneckConfig", "router_link_delay",
                          router_link_delay);
    if (obs.any())
      throw sim::ConfigError(
          "MultiBottleneckConfig: observability is not supported with "
          "sim_threads > 0",
          "component=MultiBottleneckConfig param=obs sim_threads=" +
              std::to_string(sim_threads) + "\n");
  }
  tcp.validate();
  pert.validate();
}

MultiBottleneck::MultiBottleneck(MultiBottleneckConfig cfg)
    : cfg_(cfg),
      net_(cfg.seed),
      obs_(cfg.obs),
      sampler_(net_.sched(), [this] { sample_tick(); }) {
  cfg_.validate();
  if (cfg_.sim_threads > 0) {
    net_.set_shards(cfg_.num_routers);  // one shard per router cloud
    net_.set_sim_threads(cfg_.sim_threads);
  }
  cfg_.tcp.ecn = cfg_.scheme.ecn;

  const double seg_bytes = cfg_.tcp.seg_bytes();
  // Longest path RTT: access + all router hops + access, both ways.
  const double path_delay =
      2.0 * (2.0 * cfg_.access_delay +
             (cfg_.num_routers - 1) * cfg_.router_link_delay);
  if (cfg_.buffer_pkts > 0) {
    buffer_pkts_ = cfg_.buffer_pkts;
  } else {
    buffer_pkts_ = static_cast<std::int32_t>(std::max(
        {cfg_.router_link_bps * path_delay / (8.0 * seg_bytes),
         2.0 * cfg_.hosts_per_cloud * 2.0, 10.0}));
  }

  // Shard layout: router i, its hop queues, and every host homed on it live
  // in shard i (shard 0 when unsharded — the cursor is then a no-op). Only
  // the router-to-router links cross shards.
  const auto shard_of = [this](std::int32_t r) {
    return net_.sharded() ? r : 0;
  };

  for (std::int32_t i = 0; i < cfg_.num_routers; ++i) {
    net::Network::ShardCursor at_r(net_, shard_of(i));
    routers_.push_back(net_.add_node());
  }
  for (std::int32_t i = 0; i + 1 < cfg_.num_routers; ++i) {
    {
      net::Network::ShardCursor at_r(net_, shard_of(i));
      hop_links_.push_back(
          net_.add_link(routers_[i], routers_[i + 1], cfg_.router_link_bps,
                        cfg_.router_link_delay, make_queue()));
    }
    {
      net::Network::ShardCursor at_r(net_, shard_of(i + 1));
      net_.add_link(routers_[i + 1], routers_[i], cfg_.router_link_bps,
                    cfg_.router_link_delay, make_queue());
    }
  }

  // Struct-of-arrays arenas for per-flow hot state: one per router cloud
  // when sharded (senders homed on router i use arena i, so no two workers
  // share a lane), one global arena otherwise. Cloud 0 homes two groups
  // (its hop group and the long-haul group), hence the 2x per-shard size.
  if (net_.sharded()) {
    for (std::int32_t i = 0; i < cfg_.num_routers; ++i)
      arenas_.push_back(
          std::make_unique<tcp::FlowArena>(2 * cfg_.hosts_per_cloud));
  } else {
    arenas_.push_back(std::make_unique<tcp::FlowArena>(
        cfg_.num_routers * cfg_.hosts_per_cloud));
  }

  net::FlowId flow = 0;
  // Groups 0..n-2: cloud i -> cloud i+1. Last group: cloud 0 -> last cloud.
  groups_.resize(static_cast<std::size_t>(cfg_.num_routers));
  auto add_group = [&](std::int32_t src_r, std::int32_t dst_r,
                       std::size_t group) {
    for (std::int32_t h = 0; h < cfg_.hosts_per_cloud; ++h) {
      net::Node* src;
      net::Node* dst;
      {
        net::Network::ShardCursor at_src(net_, shard_of(src_r));
        src = net_.add_node();
      }
      {
        net::Network::ShardCursor at_dst(net_, shard_of(dst_r));
        dst = net_.add_node();
      }
      // Access links are intra-shard by construction; add_duplex scopes each
      // direction's queue to its source shard.
      net_.add_duplex_droptail(src, routers_[src_r], cfg_.access_bps,
                               cfg_.access_delay, buffer_pkts_);
      net_.add_duplex_droptail(routers_[dst_r], dst, cfg_.access_bps,
                               cfg_.access_delay, buffer_pkts_);
      {
        net::Network::ShardCursor at_dst(net_, shard_of(dst_r));
        net_.add_agent<tcp::TcpSink>(dst, kPort, net_, cfg_.tcp);
      }
      net::Network::ShardCursor at_src(net_, shard_of(src_r));
      cur_arena_ = arenas_[static_cast<std::size_t>(shard_of(src_r))].get();
      tcp::TcpSender* s = make_sender(flow++);
      src->bind(*s, kPort);
      s->connect(dst->id(), kPort);
      s->start(net_.rng().uniform(0.0, cfg_.start_window));
      groups_[group].push_back(s);
    }
  };
  for (std::int32_t i = 0; i + 1 < cfg_.num_routers; ++i)
    add_group(i, i + 1, static_cast<std::size_t>(i));
  add_group(0, cfg_.num_routers - 1,
            static_cast<std::size_t>(cfg_.num_routers - 1));

  net_.compute_routes();
  net_.finalize_shards();

  // The watchdog polls cross-shard state from one shard-0 timer; skip it
  // under the parallel engine (every sim_threads value skips, so the
  // determinism oracle matches).
  if (!net_.sharded())
    checker_ = install_standard_invariants(
        net_,
        [this] {
          std::vector<const tcp::TcpSender*> all;
          for (const auto& g : groups_)
            for (auto* s : g) all.push_back(s);
          return all;
        },
        cfg_.watchdog);

  // Wire the tracer through every layer (behavior-neutral when disabled).
  // Hop links and their queues report under the hop index.
  net_.sched().set_tracer(&obs_.tracer());
  for (std::size_t h = 0; h < hop_links_.size(); ++h)
    hop_links_[h]->set_tracer(&obs_.tracer(),
                              static_cast<std::uint32_t>(h));
  for (auto& g : groups_)
    for (auto* s : g) s->set_tracer(&obs_.tracer());
  recorders_.resize(hop_links_.size());
}

std::unique_ptr<net::Queue> MultiBottleneck::make_queue() {
  net::QdiscContext qc;
  qc.sched = &net_.sched();
  qc.capacity_pkts = buffer_pkts_;
  qc.link_bps = cfg_.router_link_bps;
  qc.pps = cfg_.router_link_bps / (8.0 * cfg_.tcp.seg_bytes());
  qc.ecn = cfg_.scheme.ecn;
  qc.n_flows = cfg_.hosts_per_cloud;
  // The chain keeps the historical hop-queue design point: rtt_max 200 ms
  // and a quarter-buffer backlog target, with no clamp note.
  qc.rtt_max = 0.2;
  qc.q_ref = buffer_pkts_ / 4.0;
  qc.q_ref_requested = qc.q_ref;
  qc.fork_rng = [this] { return net_.rng().fork(); };
  return net::QdiscRegistry::instance().make(cfg_.scheme.qdisc, qc);
}

tcp::TcpSender* MultiBottleneck::make_sender(net::FlowId flow) {
  tcp::CcContext cx;
  cx.net = &net_;
  cx.tcp = cfg_.tcp;
  cx.tcp.arena = cur_arena_;
  cx.flow = flow;
  cx.pps = cfg_.router_link_bps / (8.0 * cfg_.tcp.seg_bytes());
  cx.n_flows = cfg_.hosts_per_cloud;
  // Historical chain design point: PERT/PI and PERT/REM controllers are
  // designed for a 200 ms RTT bound with their default target delay,
  // sampling frequency, and gain (no DumbbellConfig-style knobs here).
  cx.rtt_max = 0.2;
  cx.pert_params = &cfg_.pert;
  return tcp::CcRegistry::instance().make(cfg_.scheme.cc, cx);
}

void MultiBottleneck::maybe_start_sampler() {
  if (sampler_started_ || !obs_.sampling_active()) return;
  // validate() rejects observed sharded configs; this catches probes added
  // after construction, which would race the sampler across shards.
  if (net_.sharded())
    throw sim::ConfigError(
        "MultiBottleneck: observability sampling is not supported with "
        "sim_threads > 0",
        "component=MultiBottleneck param=obs\n");
  sampler_started_ = true;
  sampler_.schedule_in(obs_.config().sample_interval);
}

void MultiBottleneck::sample_tick() {
  const double t = net_.now();
  obs::Tracer& tr = obs_.tracer();
  for (std::size_t h = 0; h < hop_links_.size(); ++h) {
    const auto id = static_cast<std::uint32_t>(h);
    const double qlen =
        static_cast<double>(hop_links_[h]->queue().len_pkts());
    const double qdelay =
        qlen * cfg_.tcp.seg_bytes() * 8.0 / cfg_.router_link_bps;
    obs_.sample(t, "queue.len", id, qlen);
    obs_.sample(t, "queue.delay", id, qdelay);
    if (tr.wants(obs::Category::kQueue, obs::Severity::kInfo))
      tr.counter(t, obs::Category::kQueue, obs::Severity::kInfo,
                 "queue.delay", id, qdelay);
  }
  sampler_.schedule_in(obs_.config().sample_interval);
}

std::vector<HopMetrics> MultiBottleneck::measure_window(sim::Time warmup,
                                                        sim::Time measure) {
  maybe_start_sampler();
  net_.run_until(warmup);
  for (std::size_t h = 0; h < hop_links_.size(); ++h)
    recorders_[h].begin(hop_links_[h]->queue(), *hop_links_[h], groups_[h],
                        net_.now());

  net_.run_until(warmup + measure);

  std::vector<HopMetrics> out;
  for (std::size_t h = 0; h < hop_links_.size(); ++h) {
    const WindowMetrics w =
        recorders_[h].end(buffer_pkts_, cfg_.router_link_bps, net_.now());
    HopMetrics m;
    m.avg_queue_pkts = w.avg_queue_pkts;
    m.norm_queue = w.norm_queue;
    m.drop_rate = w.drop_rate;
    m.utilization = w.utilization;
    // Fairness over the one-hop group whose path starts at this hop.
    m.jain = w.jain;
    out.push_back(m);

    if (obs_.config().metrics) {
      const std::string hop = "hop" + std::to_string(h);
      obs::MetricRegistry& reg = obs_.registry();
      reg.counter("window." + hop + ".drops").add(w.drops);
      reg.gauge("window." + hop + ".avg_queue_pkts").set(w.avg_queue_pkts);
      reg.gauge("window." + hop + ".utilization").set(w.utilization);
      reg.gauge("window." + hop + ".jain").set(w.jain);
    }
  }
  return out;
}

}  // namespace pert::exp
