#include "exp/multi_bottleneck.h"

#include <algorithm>
#include <cassert>

#include "exp/invariants.h"
#include "stats/stats.h"

namespace pert::exp {

namespace {
constexpr std::int32_t kPort = 1;
}

MultiBottleneck::MultiBottleneck(MultiBottleneckConfig cfg)
    : cfg_(cfg), net_(cfg.seed) {
  assert(cfg_.num_routers >= 3);
  cfg_.tcp.ecn = sender_ecn(cfg_.scheme);

  const double seg_bytes = cfg_.tcp.seg_bytes();
  // Longest path RTT: access + all router hops + access, both ways.
  const double path_delay =
      2.0 * (2.0 * cfg_.access_delay +
             (cfg_.num_routers - 1) * cfg_.router_link_delay);
  if (cfg_.buffer_pkts > 0) {
    buffer_pkts_ = cfg_.buffer_pkts;
  } else {
    buffer_pkts_ = static_cast<std::int32_t>(std::max(
        {cfg_.router_link_bps * path_delay / (8.0 * seg_bytes),
         2.0 * cfg_.hosts_per_cloud * 2.0, 10.0}));
  }

  for (std::int32_t i = 0; i < cfg_.num_routers; ++i)
    routers_.push_back(net_.add_node());
  for (std::int32_t i = 0; i + 1 < cfg_.num_routers; ++i) {
    hop_links_.push_back(net_.add_link(routers_[i], routers_[i + 1],
                                       cfg_.router_link_bps,
                                       cfg_.router_link_delay, make_queue()));
    net_.add_link(routers_[i + 1], routers_[i], cfg_.router_link_bps,
                  cfg_.router_link_delay, make_queue());
  }

  net::FlowId flow = 0;
  // Groups 0..n-2: cloud i -> cloud i+1. Last group: cloud 0 -> last cloud.
  groups_.resize(static_cast<std::size_t>(cfg_.num_routers));
  auto add_group = [&](std::int32_t src_r, std::int32_t dst_r,
                       std::size_t group) {
    for (std::int32_t h = 0; h < cfg_.hosts_per_cloud; ++h) {
      net::Node* src = net_.add_node();
      net::Node* dst = net_.add_node();
      net_.add_duplex_droptail(src, routers_[src_r], cfg_.access_bps,
                               cfg_.access_delay, buffer_pkts_);
      net_.add_duplex_droptail(routers_[dst_r], dst, cfg_.access_bps,
                               cfg_.access_delay, buffer_pkts_);
      net_.add_agent<tcp::TcpSink>(dst, kPort, net_, cfg_.tcp);
      tcp::TcpSender* s = make_sender(flow++);
      src->bind(*s, kPort);
      s->connect(dst->id(), kPort);
      s->start(net_.rng().uniform(0.0, cfg_.start_window));
      groups_[group].push_back(s);
    }
  };
  for (std::int32_t i = 0; i + 1 < cfg_.num_routers; ++i)
    add_group(i, i + 1, static_cast<std::size_t>(i));
  add_group(0, cfg_.num_routers - 1,
            static_cast<std::size_t>(cfg_.num_routers - 1));

  net_.compute_routes();

  checker_ = install_standard_invariants(
      net_,
      [this] {
        std::vector<const tcp::TcpSender*> all;
        for (const auto& g : groups_)
          for (auto* s : g) all.push_back(s);
        return all;
      },
      cfg_.watchdog);
}

std::unique_ptr<net::Queue> MultiBottleneck::make_queue() {
  const double pps = cfg_.router_link_bps / (8.0 * cfg_.tcp.seg_bytes());
  switch (cfg_.scheme) {
    case Scheme::kSackRedEcn: {
      net::RedParams rp =
          net::RedParams::auto_tuned(buffer_pkts_, pps, /*ecn=*/true);
      return std::make_unique<net::RedQueue>(net_.sched(), buffer_pkts_, rp,
                                             net_.rng().fork());
    }
    case Scheme::kSackPiEcn: {
      net::PiDesign d = net::PiDesign::for_link(
          pps, cfg_.hosts_per_cloud, 0.2, buffer_pkts_ / 4.0);
      return std::make_unique<net::PiQueue>(net_.sched(), buffer_pkts_, d,
                                            /*ecn=*/true, net_.rng().fork());
    }
    case Scheme::kSackRemEcn: {
      net::RemParams rp;
      rp.q_ref = buffer_pkts_ / 4.0;
      return std::make_unique<net::RemQueue>(net_.sched(), buffer_pkts_, rp,
                                             net_.rng().fork());
    }
    case Scheme::kSackAvqEcn:
      return std::make_unique<net::AvqQueue>(net_.sched(), buffer_pkts_,
                                             cfg_.router_link_bps,
                                             net::AvqParams{});
    default:
      return std::make_unique<net::DropTailQueue>(net_.sched(), buffer_pkts_);
  }
}

tcp::TcpSender* MultiBottleneck::make_sender(net::FlowId flow) {
  switch (cfg_.scheme) {
    case Scheme::kVegas:
      return net_.add_agent<tcp::VegasSender>(nullptr, 0, net_, cfg_.tcp, flow);
    case Scheme::kPert:
      return net_.add_agent<core::PertSender>(nullptr, 0, net_, cfg_.tcp, flow,
                                              cfg_.pert);
    case Scheme::kPertPi: {
      const double pps = cfg_.router_link_bps / (8.0 * cfg_.tcp.seg_bytes());
      core::PiEmuDesign d = core::PiEmuDesign::for_path(
          pps, cfg_.hosts_per_cloud, 0.2);
      return net_.add_agent<core::PertPiSender>(nullptr, 0, net_, cfg_.tcp,
                                                flow, d);
    }
    case Scheme::kPertRem: {
      const double pps = cfg_.router_link_bps / (8.0 * cfg_.tcp.seg_bytes());
      return net_.add_agent<core::PertRemSender>(
          nullptr, 0, net_, cfg_.tcp, flow, core::RemEmuDesign::for_path(pps));
    }
    default:
      return net_.add_agent<tcp::TcpSender>(nullptr, 0, net_, cfg_.tcp, flow);
  }
}

std::vector<HopMetrics> MultiBottleneck::run(sim::Time warmup,
                                             sim::Time measure) {
  net_.run_until(warmup);
  std::vector<net::Queue::Stats> q0;
  std::vector<net::Link::Stats> l0;
  for (auto* l : hop_links_) {
    q0.push_back(l->queue().snapshot());
    l0.push_back(l->snapshot());
  }
  std::vector<std::vector<std::int64_t>> acked0(groups_.size());
  for (std::size_t g = 0; g < groups_.size(); ++g)
    for (auto* s : groups_[g]) acked0[g].push_back(s->acked_bytes());

  net_.run_until(warmup + measure);

  std::vector<HopMetrics> out;
  for (std::size_t h = 0; h < hop_links_.size(); ++h) {
    const auto q1 = hop_links_[h]->queue().snapshot();
    const auto l1 = hop_links_[h]->snapshot();
    HopMetrics m;
    m.avg_queue_pkts = (q1.len_integral - q0[h].len_integral) / measure;
    m.norm_queue = m.avg_queue_pkts / buffer_pkts_;
    const auto arr = q1.arrivals - q0[h].arrivals;
    m.drop_rate = arr == 0 ? 0.0
                           : static_cast<double>(q1.drops - q0[h].drops) /
                                 static_cast<double>(arr);
    m.utilization = static_cast<double>(l1.bytes_tx - l0[h].bytes_tx) * 8.0 /
                    (cfg_.router_link_bps * measure);
    // Fairness over the one-hop group whose path starts at this hop.
    std::vector<double> gp;
    for (std::size_t i = 0; i < groups_[h].size(); ++i)
      gp.push_back(static_cast<double>(groups_[h][i]->acked_bytes() -
                                       acked0[h][i]) *
                   8.0 / measure);
    m.jain = stats::jain_index(gp);
    out.push_back(m);
  }
  return out;
}

}  // namespace pert::exp
