#include "runner/journal.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "runner/report.h"
#include "runner/seed.h"
#include "sim/checksum.h"

namespace pert::runner {

namespace {

constexpr std::string_view kMagic = "PERTJ1";

[[noreturn]] void fail_errno(const std::string& what, const std::string& path) {
  throw std::runtime_error(what + " " + path + ": " + std::strerror(errno));
}

std::string dir_of(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

void fsync_dir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return;  // not fatal: some filesystems refuse directory fds
  ::fsync(fd);
  ::close(fd);
}

void write_all(int fd, std::string_view data, const std::string& path) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ::ssize_t n = ::write(fd, data.data() + off, data.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      fail_errno("write failed:", path);
    }
    off += static_cast<std::size_t>(n);
  }
}

std::string crc_hex(std::string_view payload) {
  char buf[9];
  std::snprintf(buf, sizeof buf, "%08x", sim::crc32(payload));
  return buf;
}

JsonValue header_to_json(const JournalHeader& h) {
  JsonValue::Object o;
  o.emplace_back("journal", JsonValue("pert-runner-v1"));
  o.emplace_back("name", JsonValue(h.name));
  o.emplace_back("jobs", JsonValue(h.jobs));
  o.emplace_back("grid", JsonValue(h.grid));
  // Shard keys only when sharded: unsharded journals keep the pre-shard byte
  // format (and stay resumable by pre-shard builds).
  if (h.shard.active()) {
    o.emplace_back("shard_index",
                   JsonValue(static_cast<std::uint64_t>(h.shard.index)));
    o.emplace_back("shard_count",
                   JsonValue(static_cast<std::uint64_t>(h.shard.count)));
    o.emplace_back("shard_grid", JsonValue(h.base));
  }
  return JsonValue(std::move(o));
}

bool header_from_json(const JsonValue& v, JournalHeader& out) {
  const JsonValue* tag = v.find("journal");
  if (!tag || !tag->is_string() || tag->as_string() != "pert-runner-v1")
    return false;
  const JsonValue* name = v.find("name");
  const JsonValue* jobs = v.find("jobs");
  const JsonValue* grid = v.find("grid");
  if (!name || !name->is_string() || !jobs || !jobs->is_uint() || !grid ||
      !grid->is_uint())
    return false;
  out.name = name->as_string();
  out.jobs = jobs->as_uint();
  out.grid = grid->as_uint();
  out.base = out.grid;
  out.shard = {};
  const JsonValue* si = v.find("shard_index");
  const JsonValue* sc = v.find("shard_count");
  const JsonValue* sg = v.find("shard_grid");
  if (si && sc && sg && si->is_uint() && sc->is_uint() && sg->is_uint()) {
    out.shard.index = static_cast<std::uint32_t>(si->as_uint());
    out.shard.count = static_cast<std::uint32_t>(sc->as_uint());
    out.base = sg->as_uint();
  } else if (si || sc || sg) {
    return false;  // a partial shard triple is corruption, not a header
  }
  return true;
}

/// Decodes one complete line (no trailing '\n'). Returns false when the line
/// is not a valid frame; `type`/`payload` are set only on success.
bool decode_frame(std::string_view line, char& type, std::string_view& payload) {
  // "PERTJ1 T XXXXXXXX <payload>"
  if (line.size() < kMagic.size() + 13) return false;
  if (line.substr(0, kMagic.size()) != kMagic) return false;
  std::size_t p = kMagic.size();
  if (line[p] != ' ') return false;
  ++p;
  const char t = line[p];
  if (t != 'H' && t != 'R') return false;
  if (line[p + 1] != ' ') return false;
  p += 2;
  const std::string_view crc_field = line.substr(p, 8);
  if (line[p + 8] != ' ') return false;
  std::uint32_t crc = 0;
  for (char c : crc_field) {
    crc <<= 4;
    if (c >= '0' && c <= '9') crc |= static_cast<std::uint32_t>(c - '0');
    else if (c >= 'a' && c <= 'f') crc |= static_cast<std::uint32_t>(c - 'a' + 10);
    else return false;
  }
  const std::string_view body = line.substr(p + 9);
  if (sim::crc32(body) != crc) return false;
  type = t;
  payload = body;
  return true;
}

int open_append(const std::string& path) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_APPEND | O_CLOEXEC, 0644);
  if (fd < 0) fail_errno("cannot open journal for appending:", path);
  return fd;
}

}  // namespace

std::string journal_frame(char type, const std::string& payload) {
  std::string line;
  line.reserve(kMagic.size() + payload.size() + 16);
  line += kMagic;
  line += ' ';
  line += type;
  line += ' ';
  line += crc_hex(payload);
  line += ' ';
  line += payload;
  line += '\n';
  return line;
}

JournalHeader journal_header(std::string_view name,
                             const std::vector<Job>& jobs,
                             dist::ShardSpec shard) {
  JournalHeader h;
  h.name = name;
  h.jobs = jobs.size();
  h.shard = shard;
  // Fold every (key, seed) pair, order-sensitively, through the same FNV/
  // splitmix primitives the seed rule uses.
  std::uint64_t acc = fnv1a64(name);
  for (const Job& j : jobs) {
    acc = splitmix64(acc ^ fnv1a64(j.key));
    acc = splitmix64(acc ^ j.seed);
  }
  h.base = acc;
  // Sharded identity additionally folds the shard spec, so --resume of a
  // shard journal by a different shard (or the unsharded sweep) is rejected
  // as "a different sweep" instead of silently skipping the wrong cells.
  h.grid = shard.active()
               ? splitmix64(splitmix64(acc ^ shard.index) ^ shard.count)
               : acc;
  return h;
}

void atomic_write_file(const std::string& path, std::string_view contents) {
  const std::string tmp = path + ".tmp";
  const int fd =
      ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) fail_errno("cannot open for writing:", tmp);
  try {
    write_all(fd, contents, tmp);
  } catch (...) {
    ::close(fd);
    throw;
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    fail_errno("fsync failed:", tmp);
  }
  if (::close(fd) != 0) fail_errno("close failed:", tmp);
  if (::rename(tmp.c_str(), path.c_str()) != 0)
    fail_errno("rename failed:", path);
  fsync_dir(dir_of(path));
}

JournalRecovery recover_journal(const std::string& path) {
  JournalRecovery rec;
  std::ifstream f(path, std::ios::binary);
  if (!f) return rec;  // no journal => nothing recovered, start fresh
  std::ostringstream ss;
  ss << f.rdbuf();
  const std::string text = ss.str();

  std::string quarantine;          // raw undecodable lines, for forensics
  std::vector<std::pair<std::string, JobResult>> kept;  // (payload, decoded)
  std::unordered_map<std::string, std::size_t> by_key;  // key -> kept index
  bool saw_header = false;

  std::size_t pos = 0;
  bool first_line = true;
  while (pos < text.size()) {
    const std::size_t nl = text.find('\n', pos);
    const bool terminated = nl != std::string::npos;
    const std::string_view line =
        std::string_view(text).substr(pos, (terminated ? nl : text.size()) - pos);
    pos = terminated ? nl + 1 : text.size();

    char type = 0;
    std::string_view payload;
    // An unterminated final line is a torn tail by definition: even if its
    // checksum happens to verify, the record was not durably framed.
    const bool ok = terminated && decode_frame(line, type, payload);
    if (!ok) {
      if (!line.empty()) {
        quarantine.append(line);
        quarantine += '\n';
        ++rec.quarantined;
      }
      continue;
    }
    if (type == 'H') {
      JournalHeader h;
      if (first_line && !saw_header && header_from_json(JsonValue::parse(std::string(payload)), h)) {
        rec.header = h;
        saw_header = true;
      } else {
        // Headers are only trusted on line one; anything else is noise.
        quarantine.append(line);
        quarantine += '\n';
        ++rec.quarantined;
      }
    } else {
      JobResult r;
      bool decoded = true;
      try {
        r = result_from_json(JsonValue::parse(std::string(payload)));
      } catch (const std::exception&) {
        decoded = false;
      }
      if (!decoded || r.key.empty()) {
        quarantine.append(line);
        quarantine += '\n';
        ++rec.quarantined;
      } else {
        ++rec.raw_records;
        const auto it = by_key.find(r.key);
        if (it != by_key.end()) {
          kept[it->second] = {std::string(payload), std::move(r)};  // last wins
          ++rec.duplicates;
        } else {
          by_key.emplace(r.key, kept.size());
          kept.emplace_back(std::string(payload), std::move(r));
        }
      }
    }
    first_line = false;
  }

  rec.usable = saw_header;

  if (!quarantine.empty()) {
    std::ofstream q(path + ".quarantine", std::ios::app | std::ios::binary);
    if (q) q << quarantine;
  }

  // Compact: rewrite the journal to exactly the surviving records so the
  // next append lands on a verified-clean file.
  if (rec.usable && (rec.quarantined > 0 || rec.duplicates > 0)) {
    std::string out = journal_frame('H', header_to_json(rec.header).dump());
    for (const auto& [payload, r] : kept) out += journal_frame('R', payload);
    atomic_write_file(path, out);
  }

  rec.records.reserve(kept.size());
  for (auto& [payload, r] : kept) rec.records.push_back(std::move(r));
  return rec;
}

Journal Journal::start_fresh(const std::string& path,
                             const JournalHeader& header) {
  atomic_write_file(path, journal_frame('H', header_to_json(header).dump()));
  return Journal(path, open_append(path));
}

Journal Journal::append_to(const std::string& path) {
  return Journal(path, open_append(path));
}

Journal::Journal(Journal&& other) noexcept
    : path_(std::move(other.path_)),
      fd_(other.fd_),
      appended_(other.appended_) {
  other.fd_ = -1;
}

Journal::~Journal() {
  if (fd_ >= 0) ::close(fd_);
}

void Journal::append(const JobResult& r) {
  const std::string line = journal_frame('R', to_json(r).dump());
  std::lock_guard<std::mutex> lock(mu_);
  write_all(fd_, line, path_);
  // fdatasync: the record itself must be durable before the runner counts
  // the cell done; metadata (mtime) is not part of the contract.
  if (::fdatasync(fd_) != 0) fail_errno("fdatasync failed:", path_);
  ++appended_;
}

}  // namespace pert::runner
