#include "runner/report.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "runner/journal.h"

// GCC 12 -Wmaybe-uninitialized fires spuriously on std::variant move
// construction when an alternative is a vector (gcc PR 105593 family); every
// site below moves a freshly constructed scalar-armed JsonValue.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif

namespace pert::runner {

namespace {

double num_or(const JsonValue& obj, std::string_view key, double fallback) {
  const JsonValue* v = obj.find(key);
  return v && v->is_number() ? v->as_double() : fallback;
}

std::uint64_t uint_or(const JsonValue& obj, std::string_view key,
                      std::uint64_t fallback) {
  const JsonValue* v = obj.find(key);
  return v && v->is_uint() ? v->as_uint() : fallback;
}

}  // namespace

JsonValue to_json(const exp::WindowMetrics& m) {
  JsonValue::Object o;
  o.reserve(15);
  o.emplace_back("duration", JsonValue(m.duration));
  o.emplace_back("avg_queue_pkts", JsonValue(m.avg_queue_pkts));
  o.emplace_back("norm_queue", JsonValue(m.norm_queue));
  o.emplace_back("drop_rate", JsonValue(m.drop_rate));
  o.emplace_back("utilization", JsonValue(m.utilization));
  o.emplace_back("jain", JsonValue(m.jain));
  o.emplace_back("agg_goodput_bps", JsonValue(m.agg_goodput_bps));
  o.emplace_back("drops", JsonValue(m.drops));
  o.emplace_back("congestion_drops", JsonValue(m.congestion_drops));
  o.emplace_back("overflow_drops", JsonValue(m.overflow_drops));
  o.emplace_back("injected_drops", JsonValue(m.injected_drops));
  o.emplace_back("ecn_marks", JsonValue(m.ecn_marks));
  o.emplace_back("early_responses", JsonValue(m.early_responses));
  o.emplace_back("timeouts", JsonValue(m.timeouts));
  o.emplace_back("loss_events", JsonValue(m.loss_events));
  return JsonValue(std::move(o));
}

exp::WindowMetrics metrics_from_json(const JsonValue& v) {
  exp::WindowMetrics m;
  m.duration = num_or(v, "duration", 0);
  m.avg_queue_pkts = num_or(v, "avg_queue_pkts", 0);
  m.norm_queue = num_or(v, "norm_queue", 0);
  m.drop_rate = num_or(v, "drop_rate", 0);
  m.utilization = num_or(v, "utilization", 0);
  m.jain = num_or(v, "jain", 0);
  m.agg_goodput_bps = num_or(v, "agg_goodput_bps", 0);
  m.drops = uint_or(v, "drops", 0);
  m.congestion_drops = uint_or(v, "congestion_drops", 0);
  m.overflow_drops = uint_or(v, "overflow_drops", 0);
  m.injected_drops = uint_or(v, "injected_drops", 0);
  m.ecn_marks = uint_or(v, "ecn_marks", 0);
  m.early_responses = uint_or(v, "early_responses", 0);
  m.timeouts = uint_or(v, "timeouts", 0);
  m.loss_events = uint_or(v, "loss_events", 0);
  return m;
}

JsonValue to_json(const obs::MetricRegistry& reg) {
  JsonValue::Object o;
  o.reserve(3);
  JsonValue::Object counters;
  counters.reserve(reg.counters().size());
  for (const auto& [name, c] : reg.counters())
    counters.emplace_back(name, JsonValue(c.value()));
  o.emplace_back("counters", JsonValue(std::move(counters)));
  JsonValue::Object gauges;
  gauges.reserve(reg.gauges().size());
  for (const auto& [name, g] : reg.gauges()) {
    const stats::Summary& s = g.summary();
    JsonValue::Object go;
    go.reserve(6);
    go.emplace_back("last", JsonValue(g.last()));
    go.emplace_back("count",
                    JsonValue(static_cast<std::uint64_t>(s.count())));
    go.emplace_back("min", JsonValue(s.min()));
    go.emplace_back("max", JsonValue(s.max()));
    go.emplace_back("mean", JsonValue(s.mean()));
    go.emplace_back("m2", JsonValue(s.m2()));
    gauges.emplace_back(name, JsonValue(std::move(go)));
  }
  o.emplace_back("gauges", JsonValue(std::move(gauges)));
  JsonValue::Object histograms;
  histograms.reserve(reg.histograms().size());
  for (const auto& [name, h] : reg.histograms()) {
    JsonValue::Object ho;
    ho.reserve(3);
    ho.emplace_back("lo", JsonValue(h.lo()));
    ho.emplace_back("hi", JsonValue(h.hi()));
    JsonValue::Array counts;
    counts.reserve(h.bins());
    for (std::size_t i = 0; i < h.bins(); ++i)
      counts.push_back(JsonValue(static_cast<std::uint64_t>(h.bin_count(i))));
    ho.emplace_back("counts", JsonValue(std::move(counts)));
    histograms.emplace_back(name, JsonValue(std::move(ho)));
  }
  o.emplace_back("histograms", JsonValue(std::move(histograms)));
  return JsonValue(std::move(o));
}

obs::MetricRegistry registry_from_json(const JsonValue& v) {
  obs::MetricRegistry reg;
  if (const JsonValue* counters = v.find("counters"))
    for (const auto& [name, c] : counters->as_object())
      reg.counter(name).add(c.as_uint());
  if (const JsonValue* gauges = v.find("gauges"))
    for (const auto& [name, g] : gauges->as_object()) {
      const auto n = static_cast<std::size_t>(uint_or(g, "count", 0));
      reg.gauge(name).restore(
          num_or(g, "last", 0),
          stats::Summary::restore(n, num_or(g, "min", 0), num_or(g, "max", 0),
                                  num_or(g, "mean", 0), num_or(g, "m2", 0)));
    }
  if (const JsonValue* histograms = v.find("histograms"))
    for (const auto& [name, h] : histograms->as_object()) {
      std::vector<std::size_t> counts;
      if (const JsonValue* c = h.find("counts")) {
        counts.reserve(c->as_array().size());
        for (const JsonValue& bin : c->as_array())
          counts.push_back(static_cast<std::size_t>(bin.as_uint()));
      }
      if (counts.empty()) continue;  // malformed; shape is unrecoverable
      const double lo = num_or(h, "lo", 0), hi = num_or(h, "hi", 1);
      reg.histogram(name, lo, hi, counts.size()) =
          stats::Histogram::restore(lo, hi, std::move(counts));
    }
  return reg;
}

JsonValue to_json(const JobResult& r) {
  JsonValue::Object o;
  o.reserve(10 + r.tags.size());
  o.emplace_back("key", JsonValue(r.key));
  for (const auto& [k, val] : r.tags) o.emplace_back(k, JsonValue(val));
  o.emplace_back("seed", JsonValue(r.seed));
  o.emplace_back("cell", JsonValue(r.cell));
  o.emplace_back("events", JsonValue(r.events));
  o.emplace_back("wall_ms", JsonValue(r.wall_ms));
  o.emplace_back("ok", JsonValue(r.ok));
  o.emplace_back("status", JsonValue(std::string(to_string(r.status))));
  if (r.attempts > 1)
    o.emplace_back("attempts",
                   JsonValue(static_cast<std::uint64_t>(r.attempts)));
  if (!r.ok) o.emplace_back("error", JsonValue(r.error));
  if (!r.diagnostics.empty())
    o.emplace_back("diagnostics", JsonValue(r.diagnostics));
  o.emplace_back("metrics", to_json(r.metrics));
  if (!r.registry.empty()) o.emplace_back("registry", to_json(r.registry));
  return JsonValue(std::move(o));
}

JobResult result_from_json(const JsonValue& v) {
  JobResult r;
  for (const auto& [k, val] : v.as_object()) {
    if (k == "key") r.key = val.as_string();
    else if (k == "seed") r.seed = val.as_uint();
    else if (k == "cell") r.cell = val.as_uint();
    else if (k == "events") r.events = val.as_uint();
    else if (k == "wall_ms") r.wall_ms = val.as_double();
    else if (k == "ok") r.ok = val.as_bool();
    else if (k == "status") r.status = job_status_from_string(val.as_string());
    else if (k == "attempts")
      r.attempts = static_cast<unsigned>(val.as_uint());
    else if (k == "error") r.error = val.as_string();
    else if (k == "diagnostics") r.diagnostics = val.as_string();
    else if (k == "metrics") r.metrics = metrics_from_json(val);
    else if (k == "registry") r.registry = registry_from_json(val);
    else if (val.is_string()) r.tags[k] = val.as_string();  // flattened tag
  }
  if (r.ok) r.status = JobStatus::kOk;  // pre-status reports only carry "ok"
  return r;
}

JsonValue to_json(const RunReport& r) {
  JsonValue::Object o;
  o.reserve(8);
  o.emplace_back("name", JsonValue(r.name));
  o.emplace_back("status", JsonValue(r.status));
  o.emplace_back("threads", JsonValue(static_cast<std::uint64_t>(r.threads)));
  o.emplace_back("jobs", JsonValue(static_cast<std::uint64_t>(r.results.size())));
  // Shard slice metadata, only when this report covers a strict slice: the
  // unsharded document (what merged shards must be byte-identical to) does
  // not carry the block at all.
  if (r.shard.active()) {
    JsonValue::Object so;
    so.reserve(5);
    so.emplace_back("index",
                    JsonValue(static_cast<std::uint64_t>(r.shard.index)));
    so.emplace_back("count",
                    JsonValue(static_cast<std::uint64_t>(r.shard.count)));
    so.emplace_back("cells",
                    JsonValue(static_cast<std::uint64_t>(r.results.size())));
    so.emplace_back("total", JsonValue(r.grid_cells));
    so.emplace_back("grid", JsonValue(r.grid));
    o.emplace_back("shard", JsonValue(std::move(so)));
  }
  o.emplace_back("wall_ms", JsonValue(r.wall_ms));
  o.emplace_back("cpu_ms", JsonValue(r.cpu_ms));
  o.emplace_back("speedup", JsonValue(r.speedup()));
  JsonValue::Array results;
  results.reserve(r.results.size());
  for (const JobResult& jr : r.results) results.push_back(to_json(jr));
  o.emplace_back("results", JsonValue(std::move(results)));
  // Batch-level rollup of every per-job registry (submission order, so the
  // merge is deterministic). Derivable from "results"; not parsed back.
  obs::MetricRegistry merged;
  for (const JobResult& jr : r.results) merged.merge(jr.registry);
  if (!merged.empty()) o.emplace_back("registry", to_json(merged));
  return JsonValue(std::move(o));
}

RunReport report_from_json(const JsonValue& v) {
  RunReport r;
  if (const JsonValue* name = v.find("name")) r.name = name->as_string();
  if (const JsonValue* status = v.find("status"))
    r.status = status->as_string();
  r.threads = static_cast<unsigned>(uint_or(v, "threads", 1));
  r.wall_ms = num_or(v, "wall_ms", 0);
  r.cpu_ms = num_or(v, "cpu_ms", 0);
  if (const JsonValue* shard = v.find("shard")) {
    r.shard.index = static_cast<std::uint32_t>(uint_or(*shard, "index", 0));
    r.shard.count = static_cast<std::uint32_t>(uint_or(*shard, "count", 1));
    r.grid_cells = uint_or(*shard, "total", 0);
    r.grid = uint_or(*shard, "grid", 0);
  }
  if (const JsonValue* results = v.find("results"))
    for (const JsonValue& jr : results->as_array())
      r.results.push_back(result_from_json(jr));
  if (!r.shard.active()) r.grid_cells = r.results.size();
  return r;
}

void write_report(const RunReport& report, const std::string& path) {
  // Atomic replace: a crash mid-export can never leave a torn JSON document
  // under the report name (readers see the old complete file or the new one).
  atomic_write_file(path, to_json(report).dump(2) + "\n");
}

RunReport read_report(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("cannot open for reading: " + path);
  std::ostringstream ss;
  ss << f.rdbuf();
  return report_from_json(JsonValue::parse(ss.str()));
}

}  // namespace pert::runner
