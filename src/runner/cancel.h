// Cooperative cancellation for experiment jobs.
//
// The runner's timeout monitor requests cancellation; the job's simulation
// watchdog polls the flag (WatchdogOptions::cancel) on its fixed check ticks
// and aborts by throwing sim::CancelledError. Nothing is killed from outside:
// a job only stops at a point where its state is coherent enough to render a
// diagnostic snapshot, and a job that ignores the flag simply runs on.
#pragma once

#include <atomic>
#include <memory>

namespace pert::runner {

/// Copyable handle to a shared cancellation flag. Copies (the Job held by the
/// runner, the closure inside the job body, the monitor's registry entry) all
/// observe the same flag.
class CancelToken {
 public:
  CancelToken() : flag_(std::make_shared<std::atomic<bool>>(false)) {}

  void request() const noexcept {
    flag_->store(true, std::memory_order_relaxed);
  }
  bool requested() const noexcept {
    return flag_->load(std::memory_order_relaxed);
  }
  /// Re-arms the token for a fresh attempt (retry path).
  void reset() const noexcept { flag_->store(false, std::memory_order_relaxed); }

  /// The raw flag, in the shape sim::WatchdogOptions::cancel wants.
  const std::atomic<bool>* flag() const noexcept { return flag_.get(); }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

}  // namespace pert::runner
