// Parallel experiment runner: executes a batch of self-contained simulation
// jobs across N worker threads.
//
// Sharding is deterministic in the only sense that matters: results land in
// the result vector at their job's submission index, and every job's RNG
// stream is fixed by its own seed, so the collected RunReport is bit-identical
// for any thread count (1 == 2 == 8 == hardware_concurrency). Workers pull
// the next unclaimed job index from a shared atomic counter (work stealing
// degenerates to this for a known-up-front job vector).
#pragma once

#include <vector>

#include "dist/shard.h"
#include "runner/job.h"

namespace pert::runner {

struct RunnerOptions {
  /// Worker threads; 0 = std::thread::hardware_concurrency().
  unsigned threads = 1;
  /// Live per-job progress lines on stderr.
  bool progress = true;
  /// Batch label for progress lines and RunReport::name.
  std::string name = "experiments";
  /// Per-job wall-clock timeout in milliseconds; 0 = none. Cancellation is
  /// cooperative: the monitor sets job.cancel, and the job's simulation
  /// watchdog (WatchdogOptions::cancel) aborts at its next check tick with a
  /// diagnostic snapshot. The job is reported status=timeout; other jobs are
  /// unaffected.
  double job_timeout_ms = 0;
  /// Retries (same seed) for jobs that throw runner::TransientError. The
  /// final attempt's failure is reported if they all fail.
  unsigned max_retries = 0;
  /// When non-empty, every completed JobResult is appended to this crash-safe
  /// journal (one checksummed JSONL record, fsync'd) as it finishes — see
  /// runner/journal.h and docs/runner.md "Crash safety & resume".
  std::string journal_path;
  /// Replay an existing journal before running: recovered ok cells are
  /// placed directly into the report (bit-identical to re-running them,
  /// because every cell is a pure function of its seed) and only missing or
  /// non-ok cells execute. Requires journal_path. A journal written for a
  /// different sweep (name, job count, or any key/seed differs) is rejected
  /// with std::runtime_error rather than silently mixed in.
  bool resume = false;
  /// Deterministic grid slice (--shard k/n): only cells whose global index i
  /// satisfies i % count == index execute; everything else — seeds, journal
  /// record bytes, report cell order — is unchanged, so the union of all n
  /// shards is byte-identical to the unsharded run. Progress totals, the
  /// report's job count, and the journal identity all describe the slice.
  dist::ShardSpec shard;
};

class ExperimentRunner {
 public:
  explicit ExperimentRunner(RunnerOptions opts = {});

  /// Executes the batch and returns one result per job, in submission order.
  /// A job that throws is reported as failed with the exception message (and
  /// a diagnostics snapshot for watchdog aborts); it never takes down the
  /// batch. threads==1 runs the jobs in order on the calling thread (exact
  /// serial semantics, no worker thread is spawned; a timeout monitor thread
  /// still runs when job_timeout_ms > 0).
  RunReport run(const std::vector<Job>& jobs);

  unsigned threads() const { return opts_.threads; }

 private:
  RunnerOptions opts_;
};

/// Resolves a requested thread count: 0 -> hardware_concurrency (min 1).
unsigned resolve_threads(unsigned requested);

/// Runs one job body on the calling thread with the runner's full failure
/// classification: transient-error retries (same seed, fresh closure copy),
/// the failed/timeout/invariant status taxonomy, and watchdog diagnostics
/// capture. `timeout_ms > 0` arms a wall-clock monitor for just this job.
/// This is the building block the distributed worker loop (src/dist/)
/// shares with the in-process thread pool; JobResult::cell is left 0 — the
/// caller knows the global index, the job body does not.
JobResult run_job(const Job& job, unsigned max_retries = 0,
                  double timeout_ms = 0);

}  // namespace pert::runner
