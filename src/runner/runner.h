// Parallel experiment runner: executes a batch of self-contained simulation
// jobs across N worker threads.
//
// Sharding is deterministic in the only sense that matters: results land in
// the result vector at their job's submission index, and every job's RNG
// stream is fixed by its own seed, so the collected RunReport is bit-identical
// for any thread count (1 == 2 == 8 == hardware_concurrency). Workers pull
// the next unclaimed job index from a shared atomic counter (work stealing
// degenerates to this for a known-up-front job vector).
#pragma once

#include <vector>

#include "runner/job.h"

namespace pert::runner {

struct RunnerOptions {
  /// Worker threads; 0 = std::thread::hardware_concurrency().
  unsigned threads = 1;
  /// Live per-job progress lines on stderr.
  bool progress = true;
  /// Batch label for progress lines and RunReport::name.
  std::string name = "experiments";
};

class ExperimentRunner {
 public:
  explicit ExperimentRunner(RunnerOptions opts = {});

  /// Executes the batch and returns one result per job, in submission order.
  /// A job that throws is reported as ok=false with the exception message;
  /// it never takes down the batch. threads==1 runs the jobs in order on the
  /// calling thread (exact serial semantics, no thread is spawned).
  RunReport run(const std::vector<Job>& jobs);

  unsigned threads() const { return opts_.threads; }

 private:
  RunnerOptions opts_;
};

/// Resolves a requested thread count: 0 -> hardware_concurrency (min 1).
unsigned resolve_threads(unsigned requested);

}  // namespace pert::runner
