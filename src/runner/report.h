// JSON (de)serialization of run reports, for BENCH_*.json trajectory
// tracking and cross-run determinism diffs.
//
// Schema (stable key order; see docs/runner.md and docs/robustness.md):
//   {
//     "name": "fig08_num_flows",
//     "status": "ok",             // "ok" | "partial" | "failed"
//     "threads": 4,
//     "jobs": 20,
//     "shard": { "index": 1, "count": 4, "cells": 5,
//                "total": 20, "grid": 123... },  // only for --shard k/n
//                                 // runs; "grid" is the shard-independent
//                                 // grid hash sweep_merge cross-checks
//     "wall_ms": 5123.4,          // volatile: wall-clock, varies per run
//     "cpu_ms": 19876.5,          // volatile
//     "speedup": 3.88,            // volatile
//     "results": [
//       { "key": "fig08_num_flows/flows=10/PERT",
//         "x": "10", "scheme": "PERT",   // job tags, flattened
//         "seed": 1234567890123456789,
//         "cell": 2,              // global index in the full grid
//         "events": 987654,
//         "wall_ms": 812.3,              // volatile
//         "ok": true,
//         "status": "ok",         // "ok" | "failed" | "timeout" |
//                                 // "invariant_violation"
//         "attempts": 2,          // only when transient retries were used
//         "error": "...",         // only when !ok
//         "diagnostics": "...",   // only for watchdog aborts (snapshot)
//         "metrics": { "duration": ..., "avg_queue_pkts": ..., ... },
//         "registry": { "counters": ..., "gauges": ..., "histograms": ... }
//                                 // only when the job recorded metrics
//       }, ... ],
//     "registry": { ... }         // all per-job registries merged; only
//                                 // when at least one job recorded metrics
//   }
// Everything except the three wall-clock fields (and speedup) is a pure
// function of the job vector, so stripping those yields a determinism-
// comparable document.
#pragma once

#include <string>

#include "exp/dumbbell.h"
#include "runner/job.h"
#include "runner/json.h"

namespace pert::runner {

JsonValue to_json(const exp::WindowMetrics& m);
exp::WindowMetrics metrics_from_json(const JsonValue& v);

/// Registry snapshot with full state (gauge m2 included) so that a parsed
/// registry re-serializes byte-identically — required for journal resume.
JsonValue to_json(const obs::MetricRegistry& reg);
obs::MetricRegistry registry_from_json(const JsonValue& v);

JsonValue to_json(const JobResult& r);
JobResult result_from_json(const JsonValue& v);

JsonValue to_json(const RunReport& r);
RunReport report_from_json(const JsonValue& v);

/// Writes `report` as indented JSON to `path`; throws std::runtime_error on
/// I/O failure.
void write_report(const RunReport& report, const std::string& path);

/// Reads a report back (inverse of write_report).
RunReport read_report(const std::string& path);

}  // namespace pert::runner
