// Thread-safe live progress reporting for parallel experiment batches.
//
// Each completed job produces exactly one line on stderr, emitted under a
// mutex with a single fprintf call, so lines from concurrent workers never
// interleave mid-line. The line carries done/total, the job key, the job's
// wall time, and an ETA extrapolated from throughput so far.
#pragma once

#include <cstddef>
#include <cstdio>
#include <chrono>
#include <mutex>
#include <string>

namespace pert::runner {

class ProgressReporter {
 public:
  /// `enabled=false` makes every call a no-op (quiet mode / tests).
  ProgressReporter(std::string label, std::size_t total, bool enabled = true,
                   std::FILE* out = stderr);

  /// Announces the batch (label, job count, thread count). One line.
  void batch_started(unsigned threads);

  /// Prints one free-form line (e.g. "resumed 12/20 cells from x.journal").
  void note(const std::string& line);

  /// Records one finished job and prints its progress line.
  void job_done(const std::string& key, double wall_ms, bool ok);

  /// Prints the closing summary line (total wall time, speedup).
  void batch_finished(double wall_ms, double cpu_ms);

  std::size_t done() const;

  /// ETA string for a batch `elapsed_s` in with `done` of `total` jobs
  /// finished: "--:--" when there is no basis for an estimate (nothing
  /// completed yet, an empty batch, or done > total — a resumed batch whose
  /// journal over-delivered), otherwise the extrapolated seconds remaining
  /// as "12.3 s". Never divides by zero, never underflows total - done.
  static std::string format_eta(std::size_t done, std::size_t total,
                                double elapsed_s);

 private:
  std::string label_;
  std::size_t total_;
  bool enabled_;
  std::FILE* out_;
  mutable std::mutex mu_;
  std::size_t done_ = 0;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace pert::runner
