#include "runner/json.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace pert::runner {

namespace {

void append_escaped(std::string& out, std::string_view s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_double(std::string& out, double d) {
  if (!std::isfinite(d)) {  // JSON has no inf/nan; emit null like most dumpers
    out += "null";
    return;
  }
  char buf[32];
  // %.17g round-trips every double exactly.
  std::snprintf(buf, sizeof buf, "%.17g", d);
  out += buf;
}

struct Parser {
  std::string_view s;
  std::size_t pos = 0;

  [[noreturn]] void fail(const std::string& what) const {
    throw JsonParseError("json parse error at offset " + std::to_string(pos) +
                         ": " + what);
  }

  void skip_ws() {
    while (pos < s.size() && (s[pos] == ' ' || s[pos] == '\t' ||
                              s[pos] == '\n' || s[pos] == '\r'))
      ++pos;
  }

  char peek() {
    if (pos >= s.size()) fail("unexpected end of input");
    return s[pos];
  }

  void expect(char c) {
    if (pos >= s.size() || s[pos] != c)
      fail(std::string("expected '") + c + "'");
    ++pos;
  }

  bool consume_literal(std::string_view lit) {
    if (s.substr(pos, lit.size()) != lit) return false;
    pos += lit.size();
    return true;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos >= s.size()) fail("unterminated string");
      const char c = s[pos++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos >= s.size()) fail("unterminated escape");
        const char e = s[pos++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos + 4 > s.size()) fail("truncated \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = s[pos++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else fail("bad hex digit in \\u escape");
            }
            // Reports only ever escape control characters; encode as UTF-8.
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xc0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3f));
            } else {
              out += static_cast<char>(0xe0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
              out += static_cast<char>(0x80 | (code & 0x3f));
            }
            break;
          }
          default: fail("unknown escape");
        }
      } else {
        out += c;
      }
    }
  }

  /// Detects non-finite spellings (NaN, Infinity, nan, inf, any case and
  /// sign) at the current position. JSON has no representation for them;
  /// reject with a typed error instead of the generic "unexpected character".
  bool at_nonfinite_literal() const {
    std::string_view rest = s.substr(pos);
    if (!rest.empty() && (rest.front() == '-' || rest.front() == '+'))
      rest.remove_prefix(1);
    for (std::string_view lit : {"NaN", "nan", "Infinity", "infinity", "inf",
                                 "Inf"})
      if (rest.substr(0, lit.size()) == lit) return true;
    return false;
  }

  JsonValue parse_number() {
    if (at_nonfinite_literal())
      fail("non-finite numbers (NaN/Infinity) are not valid JSON");
    const std::size_t start = pos;
    if (peek() == '-') ++pos;
    while (pos < s.size() && (std::isdigit(static_cast<unsigned char>(s[pos])) ||
                              s[pos] == '.' || s[pos] == 'e' || s[pos] == 'E' ||
                              s[pos] == '+' || s[pos] == '-'))
      ++pos;
    const std::string_view tok = s.substr(start, pos - start);
    const bool integral =
        tok.find_first_of(".eE-") == std::string_view::npos;
    if (integral) {
      std::uint64_t u = 0;
      const auto [p, ec] = std::from_chars(tok.data(), tok.data() + tok.size(), u);
      if (ec == std::errc() && p == tok.data() + tok.size()) return JsonValue(u);
    }
    double d = 0;
    const auto [p, ec] = std::from_chars(tok.data(), tok.data() + tok.size(), d);
    if (ec == std::errc::result_out_of_range)
      fail("number overflows double (non-finite)");
    if (ec != std::errc() || p != tok.data() + tok.size()) fail("bad number");
    if (!std::isfinite(d)) fail("non-finite numbers are not valid JSON");
    return JsonValue(d);
  }

  JsonValue parse_value() {
    skip_ws();
    const char c = peek();
    if (c == '{') {
      ++pos;
      JsonValue::Object obj;
      skip_ws();
      if (peek() == '}') { ++pos; return JsonValue(std::move(obj)); }
      for (;;) {
        skip_ws();
        std::string key = parse_string();
        skip_ws();
        expect(':');
        obj.emplace_back(std::move(key), parse_value());
        skip_ws();
        if (peek() == ',') { ++pos; continue; }
        expect('}');
        return JsonValue(std::move(obj));
      }
    }
    if (c == '[') {
      ++pos;
      JsonValue::Array arr;
      skip_ws();
      if (peek() == ']') { ++pos; return JsonValue(std::move(arr)); }
      for (;;) {
        arr.push_back(parse_value());
        skip_ws();
        if (peek() == ',') { ++pos; continue; }
        expect(']');
        return JsonValue(std::move(arr));
      }
    }
    if (c == '"') return JsonValue(parse_string());
    if (consume_literal("true")) return JsonValue(true);
    if (consume_literal("false")) return JsonValue(false);
    if (consume_literal("null")) return JsonValue(nullptr);
    if (c == '-' || std::isdigit(static_cast<unsigned char>(c)))
      return parse_number();
    if (at_nonfinite_literal())
      fail("non-finite numbers (NaN/Infinity) are not valid JSON");
    fail("unexpected character");
  }
};

void dump_rec(const JsonValue& v, std::string& out, int indent, int depth) {
  const std::string pad(indent > 0 ? static_cast<std::size_t>(indent * (depth + 1)) : 0, ' ');
  const std::string close_pad(indent > 0 ? static_cast<std::size_t>(indent * depth) : 0, ' ');
  const char* nl = indent > 0 ? "\n" : "";
  if (v.is_null()) {
    out += "null";
  } else if (v.is_bool()) {
    out += v.as_bool() ? "true" : "false";
  } else if (v.is_uint()) {
    out += std::to_string(v.as_uint());
  } else if (v.is_double()) {
    append_double(out, v.as_double());
  } else if (v.is_string()) {
    append_escaped(out, v.as_string());
  } else if (v.is_array()) {
    const auto& a = v.as_array();
    if (a.empty()) { out += "[]"; return; }
    out += '[';
    for (std::size_t i = 0; i < a.size(); ++i) {
      if (i) out += ',';
      out += nl;
      out += pad;
      dump_rec(a[i], out, indent, depth + 1);
    }
    out += nl;
    out += close_pad;
    out += ']';
  } else {
    const auto& o = v.as_object();
    if (o.empty()) { out += "{}"; return; }
    out += '{';
    for (std::size_t i = 0; i < o.size(); ++i) {
      if (i) out += ',';
      out += nl;
      out += pad;
      append_escaped(out, o[i].first);
      out += indent > 0 ? ": " : ":";
      dump_rec(o[i].second, out, indent, depth + 1);
    }
    out += nl;
    out += close_pad;
    out += '}';
  }
}

}  // namespace

const JsonValue& JsonValue::at(std::string_view key) const {
  if (const JsonValue* v = find(key)) return *v;
  throw std::out_of_range("json object has no key: " + std::string(key));
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (!is_object()) return nullptr;
  for (const auto& [k, v] : as_object())
    if (k == key) return &v;
  return nullptr;
}

void JsonValue::set(std::string key, JsonValue val) {
  if (!is_object()) v_ = Object{};
  std::get<Object>(v_).emplace_back(std::move(key), std::move(val));
}

std::string JsonValue::dump(int indent) const {
  std::string out;
  dump_rec(*this, out, indent, 0);
  return out;
}

JsonValue JsonValue::parse(std::string_view text) {
  Parser p{text};
  JsonValue v = p.parse_value();
  p.skip_ws();
  if (p.pos != text.size()) p.fail("trailing characters after document");
  return v;
}

}  // namespace pert::runner
