#include "runner/progress.h"

namespace pert::runner {

ProgressReporter::ProgressReporter(std::string label, std::size_t total,
                                   bool enabled, std::FILE* out)
    : label_(std::move(label)),
      total_(total),
      enabled_(enabled),
      out_(out),
      start_(std::chrono::steady_clock::now()) {}

void ProgressReporter::batch_started(unsigned threads) {
  if (!enabled_) return;
  std::lock_guard<std::mutex> lock(mu_);
  std::fprintf(out_, "  %s: %zu job%s on %u thread%s\n", label_.c_str(),
               total_, total_ == 1 ? "" : "s", threads,
               threads == 1 ? "" : "s");
}

void ProgressReporter::job_done(const std::string& key, double wall_ms,
                                bool ok) {
  std::lock_guard<std::mutex> lock(mu_);
  ++done_;
  if (!enabled_) return;
  const double elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
          .count();
  const double eta_s =
      done_ > 0 ? elapsed_s / static_cast<double>(done_) *
                      static_cast<double>(total_ - done_)
                : 0.0;
  // One fprintf per line: concurrent workers never interleave mid-line.
  std::fprintf(out_, "  [%zu/%zu] %s%s  %.0f ms  eta %.1f s\n", done_, total_,
               key.c_str(), ok ? "" : " FAILED", wall_ms, eta_s);
}

void ProgressReporter::batch_finished(double wall_ms, double cpu_ms) {
  if (!enabled_) return;
  std::lock_guard<std::mutex> lock(mu_);
  std::fprintf(out_, "  %s: done in %.2f s (serial-equivalent %.2f s, %.2fx)\n",
               label_.c_str(), wall_ms * 1e-3, cpu_ms * 1e-3,
               wall_ms > 0 ? cpu_ms / wall_ms : 0.0);
}

std::size_t ProgressReporter::done() const {
  std::lock_guard<std::mutex> lock(mu_);
  return done_;
}

}  // namespace pert::runner
