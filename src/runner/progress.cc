#include "runner/progress.h"

namespace pert::runner {

ProgressReporter::ProgressReporter(std::string label, std::size_t total,
                                   bool enabled, std::FILE* out)
    : label_(std::move(label)),
      total_(total),
      enabled_(enabled),
      out_(out),
      start_(std::chrono::steady_clock::now()) {}

void ProgressReporter::batch_started(unsigned threads) {
  if (!enabled_) return;
  std::lock_guard<std::mutex> lock(mu_);
  std::fprintf(out_, "  %s: %zu job%s on %u thread%s\n", label_.c_str(),
               total_, total_ == 1 ? "" : "s", threads,
               threads == 1 ? "" : "s");
}

void ProgressReporter::note(const std::string& line) {
  if (!enabled_) return;
  std::lock_guard<std::mutex> lock(mu_);
  std::fprintf(out_, "  %s\n", line.c_str());
}

std::string ProgressReporter::format_eta(std::size_t done, std::size_t total,
                                         double elapsed_s) {
  if (done == 0 || total == 0 || done > total) return "--:--";
  const double eta_s = elapsed_s / static_cast<double>(done) *
                       static_cast<double>(total - done);
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.1f s", eta_s);
  return buf;
}

void ProgressReporter::job_done(const std::string& key, double wall_ms,
                                bool ok) {
  std::lock_guard<std::mutex> lock(mu_);
  ++done_;
  if (!enabled_) return;
  const double elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
          .count();
  // One fprintf per line: concurrent workers never interleave mid-line.
  std::fprintf(out_, "  [%zu/%zu] %s%s  %.0f ms  eta %s\n", done_, total_,
               key.c_str(), ok ? "" : " FAILED", wall_ms,
               format_eta(done_, total_, elapsed_s).c_str());
}

void ProgressReporter::batch_finished(double wall_ms, double cpu_ms) {
  if (!enabled_) return;
  std::lock_guard<std::mutex> lock(mu_);
  std::fprintf(out_, "  %s: done in %.2f s (serial-equivalent %.2f s, %.2fx)\n",
               label_.c_str(), wall_ms * 1e-3, cpu_ms * 1e-3,
               wall_ms > 0 ? cpu_ms / wall_ms : 0.0);
}

std::size_t ProgressReporter::done() const {
  std::lock_guard<std::mutex> lock(mu_);
  return done_;
}

}  // namespace pert::runner
