// Crash-safe per-job journal for resumable sweeps.
//
// Alongside its final report, a journaled run maintains `<report>.journal`:
// one framed, CRC32-checksummed JSONL record per completed JobResult. The
// file is created (and recovery-compacted) via write-to-temp + fsync +
// atomic rename, and each record is appended with one write(2) followed by
// fdatasync(2), so after any crash — SIGKILL, OOM, power loss — the journal
// is a clean prefix of complete records plus at most one torn tail line.
//
// Frame grammar (one record per '\n'-terminated line):
//
//   PERTJ1 H <crc32-hex8> <header-json>      (first line)
//   PERTJ1 R <crc32-hex8> <result-json>      (one per completed job)
//
// The checksum covers exactly the payload bytes after the third space. The
// header pins the batch identity: report name, job count, and a 64-bit hash
// over every (key, seed) pair, so a journal can never resume a different
// sweep. Records are keyed by JobResult::key; duplicate keys are legal
// (a failed cell re-run on resume appends a second record) and resolve
// last-writer-wins.
//
// Recovery (`recover_journal`) replays the file, quarantines undecodable
// lines — truncated tail, checksum mismatch, malformed frame or JSON — into
// `<journal>.quarantine` (appending, for forensics), deduplicates, and
// atomically rewrites the journal to contain exactly the surviving records,
// so a subsequent crash-resume cycle starts from a verified-clean file.
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "dist/shard.h"
#include "runner/job.h"

namespace pert::runner {

struct JournalHeader {
  std::string name;         ///< RunReport/batch name
  std::uint64_t jobs = 0;   ///< cells in the full (unsharded) sweep grid
  /// Identity hash. Unsharded: a hash over every (key, seed) pair. Sharded:
  /// that base hash folded with the shard index and count, so a shard can
  /// never resume (or be mistaken for) another shard's journal — or an
  /// unsharded one. Pre-shard journals carry the base hash and a {0,1}
  /// shard, so they keep resuming byte-identically.
  std::uint64_t grid = 0;
  std::uint64_t base = 0;   ///< shard-independent grid hash (== grid when
                            ///< unsharded); lets tools cross-check that N
                            ///< shard journals describe one grid
  dist::ShardSpec shard;    ///< which slice this journal records

  friend bool operator==(const JournalHeader&, const JournalHeader&) = default;
};

/// The header describing `jobs` (order-sensitive: the grid hash folds keys
/// and seeds in submission order), sliced by `shard`. Pass the FULL job
/// vector even when sharding: the hash covers the whole grid, the shard spec
/// only selects which cells this journal may record.
JournalHeader journal_header(std::string_view name,
                             const std::vector<Job>& jobs,
                             dist::ShardSpec shard = {});

struct JournalRecovery {
  /// False when the file has no decodable header (missing, empty, or the
  /// header line itself is corrupt): the journal carries no trustworthy
  /// identity and callers must start fresh.
  bool usable = false;
  JournalHeader header;
  /// Surviving records after quarantine + last-writer-wins dedup, file order.
  std::vector<JobResult> records;
  std::size_t raw_records = 0;   ///< decodable record lines before dedup
  std::size_t duplicates = 0;    ///< earlier records superseded by key
  std::size_t quarantined = 0;   ///< lines moved to `<path>.quarantine`
};

/// Replays, quarantines, dedups, and compacts the journal at `path` (see
/// file comment). Missing file => usable=false, nothing written. Throws
/// std::runtime_error only on I/O failure.
JournalRecovery recover_journal(const std::string& path);

/// Append-only journal handle. Thread-safe: workers append completed results
/// concurrently; each append is one write(2) + fdatasync(2).
class Journal {
 public:
  /// Creates/truncates `path` with just the header (temp + fsync + rename),
  /// then opens it for appending.
  static Journal start_fresh(const std::string& path,
                             const JournalHeader& header);

  /// Opens an existing journal for appending (call after recover_journal,
  /// which guarantees the file ends in a complete record).
  static Journal append_to(const std::string& path);

  Journal(Journal&& other) noexcept;
  Journal& operator=(Journal&&) = delete;
  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;
  ~Journal();

  /// Appends one completed result as a framed record and syncs it to disk.
  void append(const JobResult& r);

  std::size_t appended() const noexcept { return appended_; }
  const std::string& path() const noexcept { return path_; }

 private:
  explicit Journal(std::string path, int fd) : path_(std::move(path)), fd_(fd) {}

  std::string path_;
  int fd_ = -1;
  std::mutex mu_;
  std::size_t appended_ = 0;
};

/// Serializes one journal line (exposed for corruption tests).
std::string journal_frame(char type, const std::string& payload);

/// Writes `contents` to `path` durably: write to `<path>.tmp`, fsync, rename
/// over `path`, fsync the containing directory. Throws std::runtime_error on
/// failure. Also used for final reports, so a crash mid-export can never
/// leave a half-written JSON document under the report name.
void atomic_write_file(const std::string& path, std::string_view contents);

}  // namespace pert::runner
