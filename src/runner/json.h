// Minimal self-contained JSON document model (no external dependency).
//
// Supports exactly what the run reports need: null, bool, double, unsigned
// 64-bit integer (kept distinct from double so RNG seeds and event counts
// round-trip exactly), string, array, and object. Objects preserve insertion
// order, so serialized reports have a stable, diffable key order.
//
// dump() emits compact or indented UTF-8; parse() is a strict recursive-
// descent parser for the same subset (numbers with no '.', 'e', or '-' that
// fit in 64 bits come back as the integer arm) and throws
// std::invalid_argument with an offset on malformed input.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

namespace pert::runner {

/// Thrown by JsonValue::parse on malformed input, with the byte offset of
/// the error in what(). Derives from std::invalid_argument so pre-existing
/// catch sites keep working; the distinct type lets callers tell "this file
/// is not valid JSON" from other argument errors. Non-finite numbers
/// (NaN / Infinity in any spelling, and literals that overflow a double)
/// are rejected with this error too: the writer never emits them (it dumps
/// non-finite doubles as null), so accepting them on input would only let
/// corrupt reports round-trip silently.
class JsonParseError : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

class JsonValue {
 public:
  using Array = std::vector<JsonValue>;
  using Object = std::vector<std::pair<std::string, JsonValue>>;

  JsonValue() : v_(nullptr) {}
  JsonValue(std::nullptr_t) : v_(nullptr) {}
  JsonValue(bool b) : v_(b) {}
  JsonValue(double d) : v_(d) {}
  JsonValue(std::uint64_t u) : v_(u) {}
  JsonValue(int i) : v_(static_cast<std::uint64_t>(i)) {}
  JsonValue(const char* s) : v_(std::string(s)) {}
  JsonValue(std::string s) : v_(std::move(s)) {}
  JsonValue(Array a) : v_(std::move(a)) {}
  JsonValue(Object o) : v_(std::move(o)) {}

  bool is_null() const { return std::holds_alternative<std::nullptr_t>(v_); }
  bool is_bool() const { return std::holds_alternative<bool>(v_); }
  bool is_double() const { return std::holds_alternative<double>(v_); }
  bool is_uint() const { return std::holds_alternative<std::uint64_t>(v_); }
  bool is_number() const { return is_double() || is_uint(); }
  bool is_string() const { return std::holds_alternative<std::string>(v_); }
  bool is_array() const { return std::holds_alternative<Array>(v_); }
  bool is_object() const { return std::holds_alternative<Object>(v_); }

  bool as_bool() const { return std::get<bool>(v_); }
  /// Any number as double (integers convert).
  double as_double() const {
    return is_uint() ? static_cast<double>(std::get<std::uint64_t>(v_))
                     : std::get<double>(v_);
  }
  std::uint64_t as_uint() const { return std::get<std::uint64_t>(v_); }
  const std::string& as_string() const { return std::get<std::string>(v_); }
  const Array& as_array() const { return std::get<Array>(v_); }
  const Object& as_object() const { return std::get<Object>(v_); }
  Array& as_array() { return std::get<Array>(v_); }
  Object& as_object() { return std::get<Object>(v_); }

  /// Object member lookup; throws std::out_of_range when absent.
  const JsonValue& at(std::string_view key) const;
  /// Object member lookup; nullptr when absent (or not an object).
  const JsonValue* find(std::string_view key) const;
  /// Appends a member to an object-valued JsonValue.
  void set(std::string key, JsonValue val);

  /// Serializes; indent > 0 pretty-prints with that many spaces per level.
  std::string dump(int indent = 0) const;

  /// Parses a complete JSON document (trailing garbage is an error).
  static JsonValue parse(std::string_view text);

  friend bool operator==(const JsonValue& a, const JsonValue& b) {
    return a.v_ == b.v_;
  }

 private:
  std::variant<std::nullptr_t, bool, double, std::uint64_t, std::string, Array,
               Object>
      v_;
};

}  // namespace pert::runner
