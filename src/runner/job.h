// Job / result / report value types for the experiment runner.
//
// A Job is one self-contained simulation cell: it owns (via its closure)
// everything it needs — config, scheduler, topology, RNG stream — and shares
// no mutable state with other jobs, so any number of them can run on any
// worker threads in any order without changing the results. The runner
// collects one JobResult per job, in submission order, into a RunReport.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "dist/shard.h"
#include "exp/dumbbell.h"
#include "obs/metrics.h"
#include "runner/cancel.h"

namespace pert::runner {

/// What a job's body hands back to the runner.
struct JobOutput {
  exp::WindowMetrics metrics;
  std::uint64_t events = 0;  ///< scheduler events dispatched by the job's sim
  /// Snapshot of the job's metric registry (empty unless the job enabled
  /// cfg.obs.metrics and copied d.obs().registry() here).
  obs::MetricRegistry registry;
};

/// Thrown by a job body to flag a failure as transient: the runner retries
/// the job (same seed, fresh attempt) up to RunnerOptions::max_retries times
/// before reporting it failed.
class TransientError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// How a job ended. Everything except kOk carries an error message; timeout
/// and invariant failures also carry a diagnostics snapshot.
enum class JobStatus : std::uint8_t {
  kOk,
  kFailed,              ///< exception / stall / non-retryable error
  kTimeout,             ///< wall-clock timeout (cooperative cancel fired)
  kInvariantViolation,  ///< simulation watchdog caught broken state
};

std::string_view to_string(JobStatus s);
/// Inverse of to_string; unknown strings map to kFailed.
JobStatus job_status_from_string(std::string_view s);

struct Job {
  /// Stable unique id, e.g. "fig08_num_flows/flows=10/PERT". Keys feed the
  /// seed-derivation rule and name the job in progress/JSON output.
  std::string key;
  /// RNG seed the job body should use (normally derive_seed(base, key)).
  std::uint64_t seed = 0;
  /// Free-form labels exported flat into the JSON result object
  /// (conventionally "x" and "scheme" for sweep cells).
  std::map<std::string, std::string> tags;
  /// The job body. Runs on an arbitrary worker thread; must be
  /// self-contained (build the sim inside, touch nothing shared).
  std::function<JobOutput(const Job&)> run;
  /// Cancellation flag for the runner's wall-clock timeout. Job bodies that
  /// want to be timeout-able point their scenario at it:
  ///   cfg.watchdog.cancel = job.cancel.flag();
  CancelToken cancel;
};

struct JobResult {
  std::string key;
  std::uint64_t seed = 0;
  /// Global cell index in the full (unsharded) grid: the job's submission
  /// index. Stable across sharding, so per-shard results can be merged back
  /// into full-grid submission order (tools/sweep_merge, dist::Coordinator).
  std::uint64_t cell = 0;
  std::map<std::string, std::string> tags;
  exp::WindowMetrics metrics;
  std::uint64_t events = 0;
  obs::MetricRegistry registry;  ///< per-job metric snapshot (may be empty)
  double wall_ms = 0;  ///< wall-clock time of this job's body (all attempts)
  bool ok = false;     ///< convenience mirror of status == kOk
  JobStatus status = JobStatus::kFailed;
  std::string error;        ///< exception message when !ok
  std::string diagnostics;  ///< watchdog snapshot (timeout/invariant/stall)
  unsigned attempts = 1;    ///< 1 + transient retries consumed
};

struct RunReport {
  std::string name;        ///< batch label, e.g. the bench name
  unsigned threads = 1;    ///< worker threads actually used
  /// Which slice of the grid this report covers ({0,1} = the whole grid).
  /// Serialized as a "shard" block only when active, so unsharded reports
  /// keep their pre-shard byte format.
  dist::ShardSpec shard;
  std::uint64_t grid = 0;        ///< base grid hash (shard-independent)
  std::uint64_t grid_cells = 0;  ///< cells in the full (unsharded) grid
  double wall_ms = 0;      ///< wall-clock time of the whole batch
  double cpu_ms = 0;       ///< sum of per-job wall times
  /// "ok" (all jobs ok), "partial" (some failed), or "failed" (all failed).
  std::string status = "ok";
  /// Cells recovered from a journal instead of executed (resume runs only).
  /// Deliberately not serialized: a resumed report must stay byte-identical
  /// to an uninterrupted one.
  std::size_t resumed = 0;
  std::vector<JobResult> results;  ///< submission order, independent of
                                   ///< completion order

  /// Parallel speedup actually realised: serial-equivalent time / wall time.
  double speedup() const { return wall_ms > 0 ? cpu_ms / wall_ms : 0.0; }
};

}  // namespace pert::runner
