// Deterministic per-job seed derivation.
//
// A job's RNG seed is a pure function of (base seed, job key string), so a
// sweep produces bit-identical results regardless of worker-thread count,
// completion order, or which subset of cells is re-run. The rule is
//
//   seed(base, key) = splitmix64(splitmix64(base) ^ fnv1a64(key))
//
// splitmix64 is the finalizer from Steele et al.'s SplitMix generator (the
// same mixer java.util.SplittableRandom uses); fnv1a64 folds the key string
// into 64 bits. Both are fixed-width integer arithmetic with no
// platform-dependent behavior, so derived seeds are stable across compilers
// and architectures (pinned by tests/runner/seed_test.cc).
#pragma once

#include <cstdint>
#include <string_view>

namespace pert::runner {

/// SplitMix64 output mixer: bijective, avalanching.
constexpr std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// FNV-1a 64-bit hash of a byte string.
constexpr std::uint64_t fnv1a64(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// The seed-derivation rule (see file comment). Distinct keys give
/// independent mt19937_64 streams even for adjacent base seeds.
constexpr std::uint64_t derive_seed(std::uint64_t base, std::string_view key) {
  return splitmix64(splitmix64(base) ^ fnv1a64(key));
}

}  // namespace pert::runner
