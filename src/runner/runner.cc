#include "runner/runner.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <exception>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string_view>
#include <thread>
#include <unordered_map>

#include "runner/journal.h"
#include "runner/progress.h"
#include "sim/errors.h"

namespace pert::runner {

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

/// Watches the set of in-flight jobs and requests cooperative cancellation on
/// the ones that blow their wall-clock budget. One monitor per batch; workers
/// arm/disarm around each attempt. The monitor never touches job state other
/// than the cancel flag, so there is no race with the worker reading results.
class TimeoutMonitor {
 public:
  explicit TimeoutMonitor(double timeout_ms)
      : timeout_(std::chrono::duration_cast<Clock::duration>(
            std::chrono::duration<double, std::milli>(timeout_ms))),
        poll_(std::chrono::duration_cast<Clock::duration>(
            std::chrono::duration<double, std::milli>(
                std::min(50.0, std::max(1.0, timeout_ms / 4.0))))),
        thread_([this] { loop(); }) {}

  ~TimeoutMonitor() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_.notify_one();
    thread_.join();
  }

  void arm(const Job& job) {
    std::lock_guard<std::mutex> lock(mu_);
    active_[&job] = Clock::now() + timeout_;
  }

  void disarm(const Job& job) {
    std::lock_guard<std::mutex> lock(mu_);
    active_.erase(&job);
  }

 private:
  void loop() {
    std::unique_lock<std::mutex> lock(mu_);
    while (!stop_) {
      cv_.wait_for(lock, poll_);
      const auto now = Clock::now();
      for (auto it = active_.begin(); it != active_.end();) {
        if (now >= it->second) {
          it->first->cancel.request();
          it = active_.erase(it);  // request once; the job aborts itself
        } else {
          ++it;
        }
      }
    }
  }

  const Clock::duration timeout_;
  const Clock::duration poll_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::map<const Job*, Clock::time_point> active_;
  std::thread thread_;
};

/// RAII arm/disarm of one job attempt on the (optional) monitor.
class TimeoutGuard {
 public:
  TimeoutGuard(TimeoutMonitor* monitor, const Job& job)
      : monitor_(monitor), job_(job) {
    if (monitor_) monitor_->arm(job_);
  }
  ~TimeoutGuard() {
    if (monitor_) monitor_->disarm(job_);
  }
  TimeoutGuard(const TimeoutGuard&) = delete;
  TimeoutGuard& operator=(const TimeoutGuard&) = delete;

 private:
  TimeoutMonitor* monitor_;
  const Job& job_;
};

/// Runs one job body (with retries for transient failures), classifying the
/// outcome into JobResult::status and capturing watchdog diagnostics.
JobResult execute(const Job& job, unsigned max_retries,
                  TimeoutMonitor* monitor) {
  JobResult r;
  r.key = job.key;
  r.seed = job.seed;
  r.tags = job.tags;
  const auto t0 = Clock::now();
  for (unsigned attempt = 1;; ++attempt) {
    r.attempts = attempt;
    job.cancel.reset();
    try {
      {
        TimeoutGuard guard(monitor, job);
        // Invoke a fresh copy of the body each attempt. std::function calls
        // through to mutable lambda state that persists across invocations,
        // so a retried attempt would otherwise see whatever the failed
        // attempt left in the closure's captures (accumulated Queue::Stats
        // snapshots, half-updated configs) and double-count it in the
        // retried cell's report.
        std::function<JobOutput(const Job&)> body = job.run;
        const JobOutput out = body(job);
        r.metrics = out.metrics;
        r.events = out.events;
        r.registry = out.registry;
      }
      if (job.cancel.requested()) {
        // The body outlived its wall-clock budget but never honored the
        // cancellation request (no watchdog, or too coarse a check tick).
        // It still blew the budget: report timeout, not ok, so a sweep can
        // never silently absorb a cell that ran unboundedly long. The
        // metrics are kept for forensics.
        r.status = JobStatus::kTimeout;
        r.error =
            "wall-clock timeout exceeded (job ignored the cancellation "
            "request and ran to completion)";
      } else {
        r.status = JobStatus::kOk;
        r.error.clear();
      }
    } catch (const TransientError& e) {
      if (attempt <= max_retries) continue;  // same seed, fresh attempt
      r.status = JobStatus::kFailed;
      r.error = e.what();
    } catch (const sim::CancelledError& e) {
      r.status = JobStatus::kTimeout;
      r.error = e.what();
      r.diagnostics = e.diagnostics();
    } catch (const sim::InvariantViolation& e) {
      r.status = JobStatus::kInvariantViolation;
      r.error = e.what();
      r.diagnostics = e.diagnostics();
    } catch (const sim::DiagnosticError& e) {  // StallError and friends
      r.status = JobStatus::kFailed;
      r.error = e.what();
      r.diagnostics = e.diagnostics();
    } catch (const std::exception& e) {
      r.status = JobStatus::kFailed;
      r.error = e.what();
    } catch (...) {
      r.status = JobStatus::kFailed;
      r.error = "unknown exception";
    }
    break;
  }
  r.ok = r.status == JobStatus::kOk;
  r.wall_ms = ms_since(t0);
  return r;
}

std::string batch_status(const std::vector<JobResult>& results) {
  std::size_t ok = 0;
  for (const JobResult& r : results) ok += r.ok ? 1 : 0;
  if (ok == results.size()) return "ok";
  return ok == 0 ? "failed" : "partial";
}

}  // namespace

std::string_view to_string(JobStatus s) {
  switch (s) {
    case JobStatus::kOk: return "ok";
    case JobStatus::kTimeout: return "timeout";
    case JobStatus::kInvariantViolation: return "invariant_violation";
    case JobStatus::kFailed: break;
  }
  return "failed";
}

JobStatus job_status_from_string(std::string_view s) {
  if (s == "ok") return JobStatus::kOk;
  if (s == "timeout") return JobStatus::kTimeout;
  if (s == "invariant_violation") return JobStatus::kInvariantViolation;
  return JobStatus::kFailed;
}

unsigned resolve_threads(unsigned requested) {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw != 0 ? hw : 1;
}

JobResult run_job(const Job& job, unsigned max_retries, double timeout_ms) {
  std::unique_ptr<TimeoutMonitor> monitor;
  if (timeout_ms > 0) monitor = std::make_unique<TimeoutMonitor>(timeout_ms);
  return execute(job, max_retries, monitor.get());
}

ExperimentRunner::ExperimentRunner(RunnerOptions opts)
    : opts_(std::move(opts)) {
  opts_.threads = resolve_threads(opts_.threads);
}

RunReport ExperimentRunner::run(const std::vector<Job>& jobs) {
  const dist::ShardSpec shard = opts_.shard;
  if (shard.count == 0 || shard.index >= shard.count)
    throw std::invalid_argument("invalid shard spec " + shard.to_string());

  // The shard's slice of the grid: global cell indices this run executes,
  // in submission order. Unsharded, that is every cell. The header (and so
  // the journal identity) always covers the FULL grid plus the shard spec.
  std::vector<std::size_t> owned;
  owned.reserve(shard.active() ? jobs.size() / shard.count + 1 : jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i)
    if (shard.owns(i)) owned.push_back(i);
  const JournalHeader header = journal_header(opts_.name, jobs, shard);

  RunReport report;
  report.name = opts_.name;
  report.shard = shard;
  report.grid = header.base;
  report.grid_cells = jobs.size();
  report.results.resize(owned.size());

  // Crash-safe journal + resume: recover completed cells before running,
  // then journal every newly completed cell. Recovered results are placed
  // at their submission index, so the final report is bit-identical to an
  // uninterrupted run (every cell is a pure function of its seed).
  std::vector<char> done(owned.size(), 0);
  std::unique_ptr<Journal> journal;
  if (!opts_.journal_path.empty()) {
    bool fresh = true;
    if (opts_.resume) {
      JournalRecovery rec = recover_journal(opts_.journal_path);
      if (rec.usable) {
        if (rec.header != header)
          throw std::runtime_error(
              "journal " + opts_.journal_path +
              " was written by a different sweep (name, job count, shard "
              "spec, or key/seed grid differs); delete it or drop --resume");
        std::unordered_map<std::string_view, std::size_t> index;
        index.reserve(owned.size());
        for (std::size_t slot = 0; slot < owned.size(); ++slot)
          index.emplace(jobs[owned[slot]].key, slot);
        for (JobResult& r : rec.records) {
          const auto it = index.find(r.key);
          // Only ok cells with the job's exact derived seed short-circuit;
          // failed/timeout cells (and stale seeds) re-run on resume.
          if (it == index.end() || r.seed != jobs[owned[it->second]].seed ||
              r.status != JobStatus::kOk)
            continue;
          r.cell = owned[it->second];
          report.results[it->second] = std::move(r);
          done[it->second] = 1;
          ++report.resumed;
        }
        fresh = false;
      }
    }
    journal = std::make_unique<Journal>(
        fresh ? Journal::start_fresh(opts_.journal_path, header)
              : Journal::append_to(opts_.journal_path));
  }

  const std::size_t remaining = owned.size() - report.resumed;
  const unsigned n_workers = static_cast<unsigned>(
      std::min<std::size_t>(opts_.threads, remaining == 0 ? 1 : remaining));
  report.threads = n_workers;

  std::unique_ptr<TimeoutMonitor> monitor;
  if (opts_.job_timeout_ms > 0 && remaining > 0)
    monitor = std::make_unique<TimeoutMonitor>(opts_.job_timeout_ms);

  // Progress totals (and the ETA derived from them) describe the shard's
  // slice, not the full grid: a 1/8th shard of a 1000-cell grid is a
  // 125-cell batch as far as throughput extrapolation goes.
  ProgressReporter progress(opts_.name, remaining, opts_.progress);
  if (shard.active())
    progress.note("shard " + shard.to_string() + ": " +
                  std::to_string(owned.size()) + " of " +
                  std::to_string(jobs.size()) + " grid cells");
  if (report.resumed > 0)
    progress.note("resumed " + std::to_string(report.resumed) + "/" +
                  std::to_string(owned.size()) + " cells from " +
                  opts_.journal_path);
  progress.batch_started(n_workers);
  const auto t0 = Clock::now();

  auto run_one = [&](std::size_t slot) {
    const std::size_t gi = owned[slot];
    JobResult r = execute(jobs[gi], opts_.max_retries, monitor.get());
    r.cell = gi;
    report.results[slot] = std::move(r);
    if (journal) journal->append(report.results[slot]);
    progress.job_done(report.results[slot].key, report.results[slot].wall_ms,
                      report.results[slot].ok);
  };

  if (n_workers <= 1) {
    // Serial path: calling thread, submission order, no worker spawned.
    for (std::size_t slot = 0; slot < owned.size(); ++slot)
      if (!done[slot]) run_one(slot);
  } else {
    // Each worker claims the next unstarted slot; results are written to
    // disjoint slots, so the only shared mutable state is the counter (and
    // the journal, which serializes its appends internally).
    std::atomic<std::size_t> next{0};
    auto worker = [&] {
      for (;;) {
        const std::size_t slot = next.fetch_add(1, std::memory_order_relaxed);
        if (slot >= owned.size()) return;
        if (!done[slot]) run_one(slot);
      }
    };
    std::vector<std::thread> pool;
    pool.reserve(n_workers);
    for (unsigned w = 0; w < n_workers; ++w) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
  }

  report.wall_ms = ms_since(t0);
  for (const JobResult& r : report.results) report.cpu_ms += r.wall_ms;
  report.status = batch_status(report.results);
  progress.batch_finished(report.wall_ms, report.cpu_ms);
  return report;
}

}  // namespace pert::runner
