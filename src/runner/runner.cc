#include "runner/runner.h"

#include <atomic>
#include <chrono>
#include <exception>
#include <thread>

#include "runner/progress.h"

namespace pert::runner {

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

/// Runs one job body, capturing exceptions into the result.
JobResult execute(const Job& job) {
  JobResult r;
  r.key = job.key;
  r.seed = job.seed;
  r.tags = job.tags;
  const auto t0 = Clock::now();
  try {
    const JobOutput out = job.run(job);
    r.metrics = out.metrics;
    r.events = out.events;
    r.ok = true;
  } catch (const std::exception& e) {
    r.error = e.what();
  } catch (...) {
    r.error = "unknown exception";
  }
  r.wall_ms = ms_since(t0);
  return r;
}

}  // namespace

unsigned resolve_threads(unsigned requested) {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw != 0 ? hw : 1;
}

ExperimentRunner::ExperimentRunner(RunnerOptions opts)
    : opts_(std::move(opts)) {
  opts_.threads = resolve_threads(opts_.threads);
}

RunReport ExperimentRunner::run(const std::vector<Job>& jobs) {
  RunReport report;
  report.name = opts_.name;
  report.results.resize(jobs.size());

  const unsigned n_workers = static_cast<unsigned>(
      std::min<std::size_t>(opts_.threads, jobs.empty() ? 1 : jobs.size()));
  report.threads = n_workers;

  ProgressReporter progress(opts_.name, jobs.size(), opts_.progress);
  progress.batch_started(n_workers);
  const auto t0 = Clock::now();

  if (n_workers <= 1) {
    // Serial path: calling thread, submission order, nothing spawned.
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      report.results[i] = execute(jobs[i]);
      progress.job_done(report.results[i].key, report.results[i].wall_ms,
                        report.results[i].ok);
    }
  } else {
    // Each worker claims the next unstarted index; results are written to
    // disjoint slots, so the only shared mutable state is the counter.
    std::atomic<std::size_t> next{0};
    auto worker = [&] {
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= jobs.size()) return;
        report.results[i] = execute(jobs[i]);
        progress.job_done(report.results[i].key, report.results[i].wall_ms,
                          report.results[i].ok);
      }
    };
    std::vector<std::thread> pool;
    pool.reserve(n_workers);
    for (unsigned w = 0; w < n_workers; ++w) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
  }

  report.wall_ms = ms_since(t0);
  for (const JobResult& r : report.results) report.cpu_ms += r.wall_ms;
  progress.batch_finished(report.wall_ms, report.cpu_ms);
  return report;
}

}  // namespace pert::runner
