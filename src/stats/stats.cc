#include "stats/stats.h"

#include <algorithm>
#include <stdexcept>

namespace pert::stats {

double jain_index(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0, sum2 = 0.0;
  for (double x : xs) {
    sum += x;
    sum2 += x * x;
  }
  if (sum2 <= 0.0) return 0.0;
  return sum * sum / (static_cast<double>(xs.size()) * sum2);
}

void Histogram::add(double x) {
  const double w = width();
  auto i = static_cast<std::ptrdiff_t>((x - lo_) / w);
  i = std::clamp<std::ptrdiff_t>(i, 0,
                                 static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(i)];
  ++total_;
}

void Histogram::merge(const Histogram& o) {
  if (lo_ != o.lo_ || hi_ != o.hi_ || counts_.size() != o.counts_.size())
    throw std::invalid_argument("Histogram::merge: shape mismatch");
  for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += o.counts_[i];
  total_ += o.total_;
}

}  // namespace pert::stats
