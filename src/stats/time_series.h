// Fixed-interval sampler: probes a value (queue length, cwnd, rate, ...)
// on a timer and stores the (t, value) series for later analysis/export.
#pragma once

#include <functional>
#include <iosfwd>
#include <utility>
#include <vector>

#include "sim/timer.h"
#include "stats/stats.h"

namespace pert::stats {

class TimeSeries {
 public:
  using Probe = std::function<double()>;

  TimeSeries(sim::Scheduler& sched, double interval, Probe probe)
      : sched_(&sched),
        interval_(interval),
        probe_(std::move(probe)),
        timer_(sched, [this] { tick(); }) {}

  /// Begins sampling at `at` (default: one interval from now).
  void start(sim::Time at = sim::kNever) {
    timer_.schedule_at(at == sim::kNever ? sched_->now() + interval_ : at);
  }
  void stop() { timer_.cancel(); }

  const std::vector<std::pair<double, double>>& samples() const noexcept {
    return samples_;
  }

  /// Summary over all samples taken so far.
  Summary summary() const {
    Summary s;
    for (const auto& [t, v] : samples_) {
      (void)t;
      s.add(v);
    }
    return s;
  }

  /// Writes "t,value" CSV lines.
  void write_csv(std::ostream& os) const;

 private:
  void tick() {
    samples_.emplace_back(sched_->now(), probe_());
    timer_.schedule_in(interval_);
  }

  sim::Scheduler* sched_;
  double interval_;
  Probe probe_;
  sim::Timer timer_;
  std::vector<std::pair<double, double>> samples_;
};

}  // namespace pert::stats
