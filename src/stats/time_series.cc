#include "stats/time_series.h"

#include <cstdio>
#include <ostream>

namespace pert::stats {

void TimeSeries::write_csv(std::ostream& os) const {
  char buf[96];
  for (const auto& [t, v] : samples_) {
    std::snprintf(buf, sizeof buf, "%.10g,%.10g\n", t, v);
    os << buf;
  }
}

}  // namespace pert::stats
