// Measurement primitives: Jain fairness, running summaries, histograms,
// EWMA, moving averages, and time-weighted values.
#pragma once

#include <cassert>
#include <cmath>
#include <cstddef>
#include <deque>
#include <span>
#include <vector>

#include "sim/time.h"

namespace pert::stats {

/// Jain fairness index (sum x)^2 / (n * sum x^2); 1 = perfectly fair.
/// Empty input or all-zero throughputs yield 0.
double jain_index(std::span<const double> xs);

/// Streaming min/max/mean/variance (Welford).
class Summary {
 public:
  void add(double x) {
    ++n_;
    if (x < min_ || n_ == 1) min_ = x;
    if (x > max_ || n_ == 1) max_ = x;
    const double d = x - mean_;
    mean_ += d / static_cast<double>(n_);
    m2_ += d * (x - mean_);
  }
  /// Combines another summary as if its samples had been added here too
  /// (Chan et al. parallel variance combination; exact for mean/min/max).
  void merge(const Summary& o) noexcept {
    if (o.n_ == 0) return;
    if (n_ == 0) {
      *this = o;
      return;
    }
    const double d = o.mean_ - mean_;
    const std::size_t n = n_ + o.n_;
    m2_ += o.m2_ + d * d * static_cast<double>(n_) *
                       static_cast<double>(o.n_) / static_cast<double>(n);
    mean_ += d * static_cast<double>(o.n_) / static_cast<double>(n);
    if (o.min_ < min_) min_ = o.min_;
    if (o.max_ > max_) max_ = o.max_;
    n_ = n;
  }

  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return mean_; }
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }
  double variance() const noexcept {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double stddev() const noexcept { return std::sqrt(variance()); }
  /// Raw sum of squared deviations (Welford M2). Exposed so a summary can be
  /// serialized and restored exactly (variance() loses the n-1 factor).
  double m2() const noexcept { return m2_; }

  /// Reconstructs a summary from its serialized state; exact inverse of
  /// reading count/min/max/mean/m2 back out.
  static Summary restore(std::size_t n, double min, double max, double mean,
                         double m2) noexcept {
    Summary s;
    s.n_ = n;
    s.min_ = min;
    s.max_ = max;
    s.mean_ = mean;
    s.m2_ = m2;
    return s;
  }

 private:
  std::size_t n_ = 0;
  double min_ = 0, max_ = 0, mean_ = 0, m2_ = 0;
};

/// Fixed-range histogram on [lo, hi); out-of-range samples clamp to the
/// first/last bin. Supports normalization to a PDF.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins)
      : lo_(lo), hi_(hi), counts_(bins, 0) {
    assert(hi > lo && bins > 0);
  }
  void add(double x);
  /// Bin-wise sum with a histogram of identical shape; throws
  /// std::invalid_argument when ranges or bin counts differ.
  void merge(const Histogram& o);
  /// Reconstructs a histogram from serialized bin counts (total is their
  /// sum); exact inverse of reading lo/hi/bin_count back out.
  static Histogram restore(double lo, double hi,
                           std::vector<std::size_t> counts) {
    Histogram h(lo, hi, counts.size());
    for (std::size_t c : counts) h.total_ += c;
    h.counts_ = std::move(counts);
    return h;
  }
  std::size_t bin_count(std::size_t i) const { return counts_.at(i); }
  std::size_t bins() const noexcept { return counts_.size(); }
  std::size_t total() const noexcept { return total_; }
  double lo() const noexcept { return lo_; }
  double hi() const noexcept { return hi_; }
  double bin_center(std::size_t i) const {
    return lo_ + (static_cast<double>(i) + 0.5) * width();
  }
  double width() const noexcept {
    return (hi_ - lo_) / static_cast<double>(counts_.size());
  }
  /// Fraction of samples in bin i (0 when empty).
  double pdf(std::size_t i) const {
    return total_ == 0 ? 0.0
                       : static_cast<double>(counts_.at(i)) /
                             static_cast<double>(total_);
  }

 private:
  double lo_, hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

/// Exponentially weighted moving average with history weight `alpha`:
/// v <- alpha * v + (1 - alpha) * sample. First sample initializes.
class Ewma {
 public:
  explicit Ewma(double alpha) : alpha_(alpha) {
    assert(alpha >= 0.0 && alpha < 1.0);
  }
  void add(double x) {
    value_ = seeded_ ? alpha_ * value_ + (1.0 - alpha_) * x : x;
    seeded_ = true;
  }
  bool seeded() const noexcept { return seeded_; }
  double value() const noexcept { return value_; }
  double alpha() const noexcept { return alpha_; }
  void reset() noexcept { seeded_ = false; value_ = 0; }

 private:
  double alpha_;
  double value_ = 0.0;
  bool seeded_ = false;
};

/// Moving average over the last `window` samples.
class MovingAverage {
 public:
  explicit MovingAverage(std::size_t window) : window_(window) {
    assert(window > 0);
  }
  void add(double x) {
    buf_.push_back(x);
    sum_ += x;
    if (buf_.size() > window_) {
      sum_ -= buf_.front();
      buf_.pop_front();
    }
  }
  bool full() const noexcept { return buf_.size() == window_; }
  std::size_t count() const noexcept { return buf_.size(); }
  double value() const noexcept {
    return buf_.empty() ? 0.0 : sum_ / static_cast<double>(buf_.size());
  }

 private:
  std::size_t window_;
  std::deque<double> buf_;
  double sum_ = 0.0;
};

/// A value whose time-weighted mean is tracked (e.g., instantaneous rate).
class TimeWeighted {
 public:
  void set(double v, sim::Time now) {
    integral_ += value_ * (now - last_);
    value_ = v;
    last_ = now;
  }
  /// Time-average over [t0, now], where integral was reset at t0.
  double average(sim::Time now) const {
    const double span = now - start_;
    if (span <= 0) return value_;
    return (integral_ + value_ * (now - last_)) / span;
  }
  void reset(sim::Time now) {
    start_ = last_ = now;
    integral_ = 0;
  }
  double current() const noexcept { return value_; }

 private:
  double value_ = 0.0;
  double integral_ = 0.0;
  sim::Time start_ = 0.0;
  sim::Time last_ = 0.0;
};

}  // namespace pert::stats
