#include "traffic/web_session.h"

#include <algorithm>
#include <cmath>

namespace pert::traffic {

WebSession::WebSession(sim::Scheduler& sched, tcp::TcpSender& sender,
                       WebParams params, sim::Rng rng, sim::Time start_at)
    : sender_(&sender),
      params_(params),
      rng_(rng),
      think_timer_(sched, [this] { begin_page(); }) {
  sender_->on_transfer_complete = [this] { next_object(); };
  think_timer_.schedule_at(start_at);
}

void WebSession::begin_page() {
  objects_left_ = static_cast<std::int64_t>(std::ceil(rng_.bounded_pareto(
      params_.objects_shape, params_.objects_min, params_.objects_cap)));
  next_object();
}

void WebSession::next_object() {
  if (objects_left_ == 0) {
    ++pages_;
    think_timer_.schedule_in(rng_.exponential(params_.think_mean));
    return;
  }
  --objects_left_;
  ++objects_;
  const double bytes = rng_.bounded_pareto(params_.size_shape,
                                           params_.size_min, params_.size_cap);
  const auto pkts = std::max<std::int64_t>(
      1, static_cast<std::int64_t>(
             std::ceil(bytes / sender_->config().seg_payload)));
  sender_->start_transfer(pkts, /*fresh_slow_start=*/true);
}

}  // namespace pert::traffic
