// Web-session traffic generator following the SIGCOMM'99 guidelines of
// Feldmann et al. [11]: a session is an on/off loop of "pages"; each page is
// a Pareto-distributed number of objects with heavy-tailed (bounded Pareto)
// sizes transferred back-to-back on the session's connection, separated by
// exponential think times. Every transfer restarts in slow start, which is
// what makes this traffic bursty at the bottleneck.
#pragma once

#include <cstdint>
#include <memory>

#include "sim/random.h"
#include "sim/timer.h"
#include "tcp/tcp_sender.h"

namespace pert::traffic {

struct WebParams {
  double think_mean = 1.0;       ///< s, exponential inter-page think time
  double objects_shape = 1.5;    ///< Pareto shape of objects per page
  double objects_min = 1.0;      ///< >= 1 object per page
  double objects_cap = 30.0;     ///< bound the tail
  double size_shape = 1.2;       ///< Pareto shape of object size (bytes)
  double size_min = 2000.0;      ///< ~12 KB mean with shape 1.2
  double size_cap = 5e6;         ///< bound the tail
};

/// Drives one TcpSender as a web session. The sender must be connected and
/// not started; the session owns its lifecycle from `start_at` on.
class WebSession {
 public:
  WebSession(sim::Scheduler& sched, tcp::TcpSender& sender, WebParams params,
             sim::Rng rng, sim::Time start_at);

  std::int64_t pages_completed() const noexcept { return pages_; }
  std::int64_t objects_completed() const noexcept { return objects_; }

 private:
  void begin_page();
  void next_object();

  tcp::TcpSender* sender_;
  WebParams params_;
  sim::Rng rng_;
  sim::Timer think_timer_;
  std::int64_t objects_left_ = 0;
  std::int64_t pages_ = 0;
  std::int64_t objects_ = 0;
};

}  // namespace pert::traffic
