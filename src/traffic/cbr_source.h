// Constant-bit-rate (non-responsive) source and a null sink to terminate it.
// Used for the "dynamic changes caused by non-responsive traffic" scenarios.
#pragma once

#include <cstdint>

#include "net/network.h"
#include "net/node.h"
#include "sim/timer.h"

namespace pert::traffic {

class NullSink final : public net::Agent {
 public:
  void receive(net::PacketPtr p) override {
    ++pkts_;
    bytes_ += p->size_bytes;
  }
  std::int64_t pkts() const noexcept { return pkts_; }
  std::int64_t bytes() const noexcept { return bytes_; }

 private:
  std::int64_t pkts_ = 0;
  std::int64_t bytes_ = 0;
};

/// Sends `pkt_bytes`-sized packets at `rate_bps` between start and stop.
class CbrSource final : public net::Agent {
 public:
  CbrSource(net::Network& net, net::FlowId flow, double rate_bps,
            std::int32_t pkt_bytes = 1040)
      : net_(&net),
        flow_(flow),
        rate_bps_(rate_bps),
        pkt_bytes_(pkt_bytes),
        timer_(net.sched(), [this] { tick(); }) {}

  void connect(net::NodeId dst, std::int32_t dst_port) {
    dst_ = dst;
    dst_port_ = dst_port;
  }
  void start(sim::Time at) { timer_.schedule_at(at); }
  void stop() { timer_.cancel(); }
  void receive(net::PacketPtr) override {}  // CBR ignores input

  std::int64_t sent() const noexcept { return sent_; }

 private:
  void tick() {
    auto p = net_->make_packet();
    p->flow = flow_;
    p->dst = dst_;
    p->dst_port = dst_port_;
    p->src_port = port();
    p->size_bytes = pkt_bytes_;
    node()->send(std::move(p));
    ++sent_;
    timer_.schedule_in(static_cast<double>(pkt_bytes_) * 8.0 / rate_bps_);
  }

  net::Network* net_;
  net::FlowId flow_;
  double rate_bps_;
  std::int32_t pkt_bytes_;
  net::NodeId dst_ = net::kNoNode;
  std::int32_t dst_port_ = 0;
  std::int64_t sent_ = 0;
  sim::Timer timer_;
};

}  // namespace pert::traffic
