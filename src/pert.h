// Umbrella header: the full public API of the PERT library.
//
//   #include <pert.h>            // everything
//
// or include subsystem headers individually:
//
//   sim/        event scheduler, timers, RNG
//   net/        packets, nodes, links, queues (DropTail / RED / PI), Network
//   tcp/        TCP SACK/NewReno sender + sink, Vegas
//   core/       PERT itself (srtt_0.99, response curves, PERT and PERT/PI)
//   traffic/    web-session and CBR generators
//   stats/      Jain index, histograms, EWMA, time-weighted averages
//   predictors/ congestion-predictor study framework (Section 2)
//   fluid/      fluid model, Theorem 1/2 checkers, DDE integrator
//   exp/        scenario builders (dumbbell, multi-bottleneck) and metrics
#pragma once

#include "core/pert_params.h"
#include "core/pert_sender.h"
#include "core/pi_emulation.h"
#include "core/rem_emulation.h"
#include "core/response_curve.h"
#include "core/srtt_estimator.h"
#include "exp/cli.h"
#include "exp/dumbbell.h"
#include "exp/multi_bottleneck.h"
#include "exp/scheme.h"
#include "exp/table.h"
#include "fluid/dde.h"
#include "fluid/pert_model.h"
#include "net/avq_queue.h"
#include "net/fault_queue.h"
#include "net/impairment.h"
#include "net/link.h"
#include "net/network.h"
#include "net/node.h"
#include "net/packet.h"
#include "net/pi_queue.h"
#include "net/queue.h"
#include "net/red_queue.h"
#include "net/rem_queue.h"
#include "predictors/classic.h"
#include "predictors/extra.h"
#include "predictors/predictor.h"
#include "predictors/trace_io.h"
#include "predictors/trace_recorder.h"
#include "sim/errors.h"
#include "sim/random.h"
#include "sim/scheduler.h"
#include "sim/time.h"
#include "sim/timer.h"
#include "sim/watchdog.h"
#include "stats/stats.h"
#include "stats/time_series.h"
#include "tcp/tcp_config.h"
#include "tcp/tcp_sender.h"
#include "tcp/tcp_sink.h"
#include "tcp/vegas.h"
#include "traffic/cbr_source.h"
#include "traffic/web_session.h"
