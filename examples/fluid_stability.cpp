// Fluid-model stability explorer: given a path/population configuration,
// report the equilibrium (eq. 9), whether Theorem 1's sufficient condition
// holds, the minimum stable sampling interval (eq. 13), and a short DDE
// trajectory to confirm. Usage:
//
//   fluid_stability [rtt_ms] [capacity_pkts_per_s] [n_flows]
//
// Defaults reproduce the paper's Section 5.3 setup (R varies, C=100, N=5).
#include <cstdio>
#include <cstdlib>

#include "exp/table.h"
#include "fluid/pert_model.h"

int main(int argc, char** argv) {
  using namespace pert;

  fluid::PertModelParams p;
  p.rtt = argc > 1 ? std::atof(argv[1]) / 1e3 : 0.160;
  p.capacity = argc > 2 ? std::atof(argv[2]) : 100.0;
  p.n_flows = argc > 3 ? std::atof(argv[3]) : 5.0;
  p.p_max = 0.1;
  p.t_max = 0.100;
  p.t_min = 0.050;
  p.alpha = 0.99;
  p.delta = 1e-4;

  std::printf("PERT fluid model  (R=%.0f ms, C=%.0f pkt/s, N=%.0f, "
              "pmax=%.2f, Tmin=%.0fms, Tmax=%.0fms, alpha=%.2f, "
              "delta=%.1f ms)\n\n",
              p.rtt * 1e3, p.capacity, p.n_flows, p.p_max, p.t_min * 1e3,
              p.t_max * 1e3, p.alpha, p.delta * 1e3);

  const fluid::Equilibrium eq = fluid::equilibrium(p);
  std::printf("equilibrium:  W* = %.2f pkts   p* = %.4f   Tq* = %.3f s\n",
              eq.window, eq.prob, eq.t_queue);
  std::printf("Theorem 1 sufficient condition: %s\n",
              fluid::thm1_stable(p) ? "SATISFIED (locally stable)"
                                    : "VIOLATED (may oscillate)");
  const double dmin = fluid::min_delta(p);
  if (dmin > 0)
    std::printf("minimum stable sampling interval (eq. 13): %.4f s\n", dmin);
  else
    std::printf("stable for any sampling interval at these parameters\n");

  std::printf("\nDDE trajectory (x0 = [1,1,1]):\n");
  const auto traj = fluid::simulate(p, 200.0, {1, 1, 1}, 5e-4, 20.0);
  exp::Table t({"t (s)", "W (pkts)", "Tq inst (s)", "Tq smooth (s)"});
  for (const auto& pt : traj)
    t.row({exp::fmt(pt.t, "%.0f"), exp::fmt(pt.window, "%.3f"),
           exp::fmt(pt.tq_inst, "%.4f"), exp::fmt(pt.tq_smooth, "%.4f")});
  t.print();
  const double err = fluid::tail_window_error(traj, p);
  std::printf("\ntail |W - W*| / W* = %.3f -> %s\n", err,
              err < 0.10 ? "converged" : "oscillating");
  return 0;
}
