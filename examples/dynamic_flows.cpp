// Dynamic workload walkthrough: cohorts of PERT flows join and leave a
// bottleneck while a CBR (non-responsive) burst comes and goes. Shows the
// library's runtime-topology API (add_flows / stop_flow) and prints a
// 5-second-bin time series of aggregate goodput and queue occupancy.
#include <cstdio>
#include <vector>

#include "exp/dumbbell.h"
#include "exp/table.h"
#include "traffic/cbr_source.h"

int main() {
  using namespace pert;

  exp::DumbbellConfig cfg;
  cfg.scheme = exp::Scheme::kPert;
  cfg.bottleneck_bps = 30e6;
  cfg.rtt = 0.060;
  cfg.num_fwd_flows = 5;
  cfg.start_window = 1.0;
  cfg.seed = 77;
  exp::Dumbbell d(cfg);

  // A non-responsive 10 Mbps CBR source active during [40 s, 60 s),
  // entering at the left router and exiting at the right one.
  net::Network& net = d.network();
  auto* cbr_src_node = net.add_node();
  auto* cbr_dst_node = net.add_node();
  net.add_duplex_droptail(cbr_src_node, net.node(0), 100e6, 0.001, 1000);
  net.add_duplex_droptail(net.node(1), cbr_dst_node, 100e6, 0.001, 1000);
  net.add_agent<traffic::NullSink>(cbr_dst_node, 1);
  auto* cbr = net.add_agent<traffic::CbrSource>(nullptr, 0, net, 900, 10e6);
  cbr_src_node->bind(*cbr, 1);
  cbr->connect(cbr_dst_node->id(), 1);
  net.compute_routes();
  net.sched().schedule_at(40.0, [cbr] { cbr->start(40.0); });
  net.sched().schedule_at(60.0, [cbr] { cbr->stop(); });

  // Second PERT cohort joins at t=20 s and leaves at t=80 s.
  std::vector<std::int32_t> cohort2;
  net.sched().schedule_at(20.0, [&] { cohort2 = d.add_flows(5, 20.0); });
  net.sched().schedule_at(80.0, [&] {
    for (std::int32_t i : cohort2) d.stop_flow(i);
  });

  exp::Table t({"t (s)", "goodput c1 (Mbps)", "goodput c2 (Mbps)",
                "cbr active", "queue (pkts)"});
  std::vector<std::int64_t> acked(10, 0);
  auto goodput = [&](std::int32_t lo, std::int32_t hi, double dt) {
    double bits = 0;
    for (std::int32_t i = lo; i < hi && i < d.num_fwd(); ++i) {
      const std::int64_t a = d.flow_acked(i);
      bits += static_cast<double>(a - acked[i]) * 8 * cfg.tcp.seg_payload;
      acked[i] = a;
    }
    return bits / dt / 1e6;
  };

  for (double now = 5.0; now <= 100.0; now += 5.0) {
    net.run_until(now);
    t.row({exp::fmt(now, "%.0f"), exp::fmt(goodput(0, 5, 5.0), "%.1f"),
           exp::fmt(goodput(5, 10, 5.0), "%.1f"),
           (now > 40 && now <= 60) ? "yes" : "no",
           std::to_string(d.fwd_queue().len_pkts())});
  }
  t.print();
  std::puts("\nExpect: c1 ~ 28 Mbps alone; fair split with c2 after t=20;"
            "\nboth shrink while the 10 Mbps CBR burst runs (40-60 s);"
            "\nc1 reclaims the link after c2 leaves at t=80.");
  return 0;
}
