// Predictor study walkthrough (the Section 2 methodology on your machine):
// run a loaded dumbbell, record the tagged flow's per-ACK trace, save it to
// disk in pert-trace v1 format, reload it, and evaluate every congestion
// predictor against flow-level and queue-level loss events.
#include <cstdio>
#include <memory>
#include <vector>

#include "exp/dumbbell.h"
#include "exp/table.h"
#include "predictors/classic.h"
#include "predictors/extra.h"
#include "predictors/trace_io.h"
#include "predictors/trace_recorder.h"

int main() {
  using namespace pert;
  using namespace pert::predictors;

  // 1. Simulate: standard TCP over a 50 Mbps DropTail bottleneck with web
  //    cross-traffic; flow 0 (60 ms RTT) is the observed flow.
  exp::DumbbellConfig cfg;
  cfg.scheme = exp::Scheme::kSackDroptail;
  cfg.bottleneck_bps = 50e6;
  cfg.rtt = 0.060;
  cfg.flow_rtts = {0.060, 0.030, 0.090, 0.120};
  cfg.num_fwd_flows = 8;
  cfg.num_web_sessions = 40;
  cfg.start_window = 5.0;
  cfg.seed = 77;
  exp::Dumbbell d(cfg);

  d.network().run_until(15.0);  // converge first
  TraceRecorder rec(d.fwd_sender(0), d.fwd_queue());
  d.network().run_until(75.0);

  // 2. Persist + reload (the offline-analysis path).
  const char* path = "/tmp/pert_example_trace.csv";
  save_trace(rec.take(), path);
  const FlowTrace trace = load_trace(path);
  std::printf("recorded %zu ACK samples, %zu flow losses, %zu queue drops "
              "-> %s\n\n",
              trace.samples.size(), trace.flow_losses.size(),
              trace.queue_losses.size(), path);

  // 3. Evaluate predictors against queue-level losses (the paper's fix to
  //    the earlier measurement studies).
  const double threshold = 0.065;  // P + 5 ms for the 60 ms path
  std::vector<std::unique_ptr<Predictor>> preds;
  preds.push_back(std::make_unique<VegasPredictor>());
  preds.push_back(std::make_unique<CardPredictor>());
  preds.push_back(std::make_unique<TrisPredictor>());
  preds.push_back(std::make_unique<DualPredictor>());
  preds.push_back(std::make_unique<CimPredictor>());
  preds.push_back(std::make_unique<ThresholdPredictor>(threshold));
  preds.push_back(std::make_unique<MovingAvgPredictor>(750, threshold));
  preds.push_back(std::make_unique<EwmaPredictor>(0.99, threshold));
  preds.push_back(std::make_unique<BfaPredictor>());
  preds.push_back(std::make_unique<TrendPredictor>());

  exp::Table t({"predictor", "efficiency", "false pos.", "false neg.",
                "eff. (flow-level)"});
  for (auto& p : preds) {
    ClassifyOptions qopt;
    const TransitionCounts q = classify(trace, *p, qopt);
    ClassifyOptions fopt;
    fopt.queue_level_losses = false;
    const TransitionCounts f = classify(trace, *p, fopt);
    t.row({std::string(p->name()), exp::fmt(q.efficiency(), "%.3f"),
           exp::fmt(q.false_positive_rate(), "%.3f"),
           exp::fmt(q.false_negative_rate(), "%.3f"),
           exp::fmt(f.efficiency(), "%.3f")});
  }
  t.print();
  std::puts("\nNote how queue-level efficiency exceeds flow-level for the "
            "delay signals\n(the paper's Figure 2 point), and how smoothing "
            "(ewma/mavg) removes the\ninstantaneous signal's false "
            "positives (Figure 3).");
  return 0;
}
