// AQM comparison: run every scheme in the registry — end-host (PERT,
// PERT-PI, Vegas) and router-based (RED-ECN, PI-ECN) — over the same
// heterogeneous workload (long-term flows with mixed RTTs + web sessions)
// and print a side-by-side comparison.
//
// This is the paper's core claim in one program: emulating AQM at end hosts
// gets you router-AQM queueing behavior without touching the routers.
#include <cstdio>
#include <string>

#include "exp/dumbbell.h"
#include "exp/table.h"

int main() {
  using namespace pert;

  exp::Table t({"scheme", "router support?", "avg queue (pkts)", "drop rate",
                "ECN marks", "util (%)", "jain", "early resp."});

  for (exp::Scheme scheme :
       {exp::Scheme::kPert, exp::Scheme::kPertPi, exp::Scheme::kPertRem,
        exp::Scheme::kVegas, exp::Scheme::kSackRedEcn,
        exp::Scheme::kSackPiEcn, exp::Scheme::kSackRemEcn,
        exp::Scheme::kSackAvqEcn, exp::Scheme::kSackDroptail}) {
    std::fprintf(stderr, "running %s ...\n",
                 std::string(exp::to_string(scheme)).c_str());
    exp::DumbbellConfig cfg;
    cfg.scheme = scheme;
    cfg.bottleneck_bps = 50e6;
    cfg.rtt = 0.080;
    cfg.flow_rtts = {0.040, 0.060, 0.080, 0.100, 0.120};
    cfg.num_fwd_flows = 15;
    cfg.num_web_sessions = 25;
    cfg.start_window = 5.0;
    cfg.seed = 2024;

    exp::Dumbbell d(cfg);
    const exp::WindowMetrics m = d.measure_window(20.0, 60.0);
    t.row({std::string(exp::to_string(scheme)),
           exp::router_aqm(scheme) ? "yes (AQM queue)" : "no (DropTail)",
           exp::fmt(m.avg_queue_pkts, "%.1f"), exp::fmt(m.drop_rate, "%.2e"),
           std::to_string(m.ecn_marks), exp::fmt(100 * m.utilization, "%.1f"),
           exp::fmt(m.jain, "%.3f"), std::to_string(m.early_responses)});
  }
  t.print();
  std::puts("\nPERT rows should look like the RED-ECN/PI-ECN rows (low queue,"
            " ~zero drops)\nwhile running over plain DropTail routers.");
  return 0;
}
