// Quickstart: build a dumbbell, run PERT flows against SACK/DropTail, and
// print the bottleneck metrics — the 60-second version of the paper's story:
// PERT keeps the queue and the loss rate near zero at comparable utilization.
#include <cstdio>

#include "exp/dumbbell.h"
#include "exp/table.h"

int main() {
  using namespace pert;

  exp::Table table({"scheme", "avg queue (pkts)", "drop rate", "utilization",
                    "jain", "early responses"});

  for (exp::Scheme scheme :
       {exp::Scheme::kPert, exp::Scheme::kSackDroptail,
        exp::Scheme::kSackRedEcn, exp::Scheme::kVegas}) {
    exp::DumbbellConfig cfg;
    cfg.scheme = scheme;
    cfg.bottleneck_bps = 100e6;  // 100 Mbps
    cfg.rtt = 0.060;             // 60 ms
    cfg.num_fwd_flows = 10;
    cfg.start_window = 5.0;
    cfg.seed = 42;

    exp::Dumbbell d(cfg);
    exp::WindowMetrics m = d.measure_window(/*warmup=*/20.0, /*measure=*/40.0);

    table.row({std::string(exp::to_string(scheme)),
               exp::fmt(m.avg_queue_pkts, "%.1f"),
               exp::fmt(m.drop_rate, "%.2e"),
               exp::fmt(m.utilization, "%.3f"), exp::fmt(m.jain, "%.3f"),
               std::to_string(m.early_responses)});
  }
  table.print();
  std::puts("\nExpected shape: PERT/RED-ECN near-zero queue+drops; DropTail "
            "high queue; all near full utilization.");
  return 0;
}
