file(REMOVE_RECURSE
  "CMakeFiles/aqm_comparison.dir/aqm_comparison.cpp.o"
  "CMakeFiles/aqm_comparison.dir/aqm_comparison.cpp.o.d"
  "aqm_comparison"
  "aqm_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aqm_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
