# Empty compiler generated dependencies file for aqm_comparison.
# This may be replaced when dependencies are built.
