file(REMOVE_RECURSE
  "CMakeFiles/dynamic_flows.dir/dynamic_flows.cpp.o"
  "CMakeFiles/dynamic_flows.dir/dynamic_flows.cpp.o.d"
  "dynamic_flows"
  "dynamic_flows.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynamic_flows.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
