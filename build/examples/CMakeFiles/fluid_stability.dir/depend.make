# Empty dependencies file for fluid_stability.
# This may be replaced when dependencies are built.
