file(REMOVE_RECURSE
  "CMakeFiles/fluid_stability.dir/fluid_stability.cpp.o"
  "CMakeFiles/fluid_stability.dir/fluid_stability.cpp.o.d"
  "fluid_stability"
  "fluid_stability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fluid_stability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
