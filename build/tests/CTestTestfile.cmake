# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_stats[1]_include.cmake")
include("/root/repo/build/tests/test_net[1]_include.cmake")
include("/root/repo/build/tests/test_tcp[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_predictors[1]_include.cmake")
include("/root/repo/build/tests/test_traffic[1]_include.cmake")
include("/root/repo/build/tests/test_exp[1]_include.cmake")
include("/root/repo/build/tests/test_fluid[1]_include.cmake")
