file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/core/pert_ext_test.cc.o"
  "CMakeFiles/test_core.dir/core/pert_ext_test.cc.o.d"
  "CMakeFiles/test_core.dir/core/pert_sender_test.cc.o"
  "CMakeFiles/test_core.dir/core/pert_sender_test.cc.o.d"
  "CMakeFiles/test_core.dir/core/pi_emulation_test.cc.o"
  "CMakeFiles/test_core.dir/core/pi_emulation_test.cc.o.d"
  "CMakeFiles/test_core.dir/core/response_curve_test.cc.o"
  "CMakeFiles/test_core.dir/core/response_curve_test.cc.o.d"
  "CMakeFiles/test_core.dir/core/srtt_test.cc.o"
  "CMakeFiles/test_core.dir/core/srtt_test.cc.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
