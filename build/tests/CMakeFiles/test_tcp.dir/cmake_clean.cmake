file(REMOVE_RECURSE
  "CMakeFiles/test_tcp.dir/tcp/ecn_test.cc.o"
  "CMakeFiles/test_tcp.dir/tcp/ecn_test.cc.o.d"
  "CMakeFiles/test_tcp.dir/tcp/recovery_whitebox_test.cc.o"
  "CMakeFiles/test_tcp.dir/tcp/recovery_whitebox_test.cc.o.d"
  "CMakeFiles/test_tcp.dir/tcp/rto_backoff_test.cc.o"
  "CMakeFiles/test_tcp.dir/tcp/rto_backoff_test.cc.o.d"
  "CMakeFiles/test_tcp.dir/tcp/sink_test.cc.o"
  "CMakeFiles/test_tcp.dir/tcp/sink_test.cc.o.d"
  "CMakeFiles/test_tcp.dir/tcp/tcp_basic_test.cc.o"
  "CMakeFiles/test_tcp.dir/tcp/tcp_basic_test.cc.o.d"
  "CMakeFiles/test_tcp.dir/tcp/tcp_features_test.cc.o"
  "CMakeFiles/test_tcp.dir/tcp/tcp_features_test.cc.o.d"
  "CMakeFiles/test_tcp.dir/tcp/tcp_loss_test.cc.o"
  "CMakeFiles/test_tcp.dir/tcp/tcp_loss_test.cc.o.d"
  "CMakeFiles/test_tcp.dir/tcp/vegas_slowstart_test.cc.o"
  "CMakeFiles/test_tcp.dir/tcp/vegas_slowstart_test.cc.o.d"
  "CMakeFiles/test_tcp.dir/tcp/vegas_test.cc.o"
  "CMakeFiles/test_tcp.dir/tcp/vegas_test.cc.o.d"
  "test_tcp"
  "test_tcp.pdb"
  "test_tcp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tcp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
