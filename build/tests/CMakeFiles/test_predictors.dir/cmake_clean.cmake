file(REMOVE_RECURSE
  "CMakeFiles/test_predictors.dir/predictors/end_to_end_test.cc.o"
  "CMakeFiles/test_predictors.dir/predictors/end_to_end_test.cc.o.d"
  "CMakeFiles/test_predictors.dir/predictors/extra_test.cc.o"
  "CMakeFiles/test_predictors.dir/predictors/extra_test.cc.o.d"
  "CMakeFiles/test_predictors.dir/predictors/predictor_test.cc.o"
  "CMakeFiles/test_predictors.dir/predictors/predictor_test.cc.o.d"
  "CMakeFiles/test_predictors.dir/predictors/trace_io_test.cc.o"
  "CMakeFiles/test_predictors.dir/predictors/trace_io_test.cc.o.d"
  "test_predictors"
  "test_predictors.pdb"
  "test_predictors[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_predictors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
