file(REMOVE_RECURSE
  "CMakeFiles/test_exp.dir/exp/cli_test.cc.o"
  "CMakeFiles/test_exp.dir/exp/cli_test.cc.o.d"
  "CMakeFiles/test_exp.dir/exp/dumbbell_test.cc.o"
  "CMakeFiles/test_exp.dir/exp/dumbbell_test.cc.o.d"
  "CMakeFiles/test_exp.dir/exp/metrics_test.cc.o"
  "CMakeFiles/test_exp.dir/exp/metrics_test.cc.o.d"
  "CMakeFiles/test_exp.dir/exp/multi_bottleneck_test.cc.o"
  "CMakeFiles/test_exp.dir/exp/multi_bottleneck_test.cc.o.d"
  "CMakeFiles/test_exp.dir/exp/paper_shapes_test.cc.o"
  "CMakeFiles/test_exp.dir/exp/paper_shapes_test.cc.o.d"
  "CMakeFiles/test_exp.dir/exp/table_test.cc.o"
  "CMakeFiles/test_exp.dir/exp/table_test.cc.o.d"
  "test_exp"
  "test_exp.pdb"
  "test_exp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_exp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
