file(REMOVE_RECURSE
  "CMakeFiles/test_net.dir/net/avq_rem_test.cc.o"
  "CMakeFiles/test_net.dir/net/avq_rem_test.cc.o.d"
  "CMakeFiles/test_net.dir/net/fault_queue_test.cc.o"
  "CMakeFiles/test_net.dir/net/fault_queue_test.cc.o.d"
  "CMakeFiles/test_net.dir/net/link_node_test.cc.o"
  "CMakeFiles/test_net.dir/net/link_node_test.cc.o.d"
  "CMakeFiles/test_net.dir/net/pi_test.cc.o"
  "CMakeFiles/test_net.dir/net/pi_test.cc.o.d"
  "CMakeFiles/test_net.dir/net/queue_test.cc.o"
  "CMakeFiles/test_net.dir/net/queue_test.cc.o.d"
  "CMakeFiles/test_net.dir/net/red_test.cc.o"
  "CMakeFiles/test_net.dir/net/red_test.cc.o.d"
  "CMakeFiles/test_net.dir/net/routing_property_test.cc.o"
  "CMakeFiles/test_net.dir/net/routing_property_test.cc.o.d"
  "test_net"
  "test_net.pdb"
  "test_net[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
