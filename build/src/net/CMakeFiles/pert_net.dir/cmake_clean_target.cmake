file(REMOVE_RECURSE
  "libpert_net.a"
)
