
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/avq_queue.cc" "src/net/CMakeFiles/pert_net.dir/avq_queue.cc.o" "gcc" "src/net/CMakeFiles/pert_net.dir/avq_queue.cc.o.d"
  "/root/repo/src/net/link.cc" "src/net/CMakeFiles/pert_net.dir/link.cc.o" "gcc" "src/net/CMakeFiles/pert_net.dir/link.cc.o.d"
  "/root/repo/src/net/network.cc" "src/net/CMakeFiles/pert_net.dir/network.cc.o" "gcc" "src/net/CMakeFiles/pert_net.dir/network.cc.o.d"
  "/root/repo/src/net/node.cc" "src/net/CMakeFiles/pert_net.dir/node.cc.o" "gcc" "src/net/CMakeFiles/pert_net.dir/node.cc.o.d"
  "/root/repo/src/net/pi_queue.cc" "src/net/CMakeFiles/pert_net.dir/pi_queue.cc.o" "gcc" "src/net/CMakeFiles/pert_net.dir/pi_queue.cc.o.d"
  "/root/repo/src/net/queue.cc" "src/net/CMakeFiles/pert_net.dir/queue.cc.o" "gcc" "src/net/CMakeFiles/pert_net.dir/queue.cc.o.d"
  "/root/repo/src/net/red_queue.cc" "src/net/CMakeFiles/pert_net.dir/red_queue.cc.o" "gcc" "src/net/CMakeFiles/pert_net.dir/red_queue.cc.o.d"
  "/root/repo/src/net/rem_queue.cc" "src/net/CMakeFiles/pert_net.dir/rem_queue.cc.o" "gcc" "src/net/CMakeFiles/pert_net.dir/rem_queue.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/pert_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
