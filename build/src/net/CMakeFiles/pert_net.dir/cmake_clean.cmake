file(REMOVE_RECURSE
  "CMakeFiles/pert_net.dir/avq_queue.cc.o"
  "CMakeFiles/pert_net.dir/avq_queue.cc.o.d"
  "CMakeFiles/pert_net.dir/link.cc.o"
  "CMakeFiles/pert_net.dir/link.cc.o.d"
  "CMakeFiles/pert_net.dir/network.cc.o"
  "CMakeFiles/pert_net.dir/network.cc.o.d"
  "CMakeFiles/pert_net.dir/node.cc.o"
  "CMakeFiles/pert_net.dir/node.cc.o.d"
  "CMakeFiles/pert_net.dir/pi_queue.cc.o"
  "CMakeFiles/pert_net.dir/pi_queue.cc.o.d"
  "CMakeFiles/pert_net.dir/queue.cc.o"
  "CMakeFiles/pert_net.dir/queue.cc.o.d"
  "CMakeFiles/pert_net.dir/red_queue.cc.o"
  "CMakeFiles/pert_net.dir/red_queue.cc.o.d"
  "CMakeFiles/pert_net.dir/rem_queue.cc.o"
  "CMakeFiles/pert_net.dir/rem_queue.cc.o.d"
  "libpert_net.a"
  "libpert_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pert_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
