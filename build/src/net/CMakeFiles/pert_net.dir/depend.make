# Empty dependencies file for pert_net.
# This may be replaced when dependencies are built.
