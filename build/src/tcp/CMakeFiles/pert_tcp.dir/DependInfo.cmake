
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tcp/tcp_sender.cc" "src/tcp/CMakeFiles/pert_tcp.dir/tcp_sender.cc.o" "gcc" "src/tcp/CMakeFiles/pert_tcp.dir/tcp_sender.cc.o.d"
  "/root/repo/src/tcp/tcp_sink.cc" "src/tcp/CMakeFiles/pert_tcp.dir/tcp_sink.cc.o" "gcc" "src/tcp/CMakeFiles/pert_tcp.dir/tcp_sink.cc.o.d"
  "/root/repo/src/tcp/vegas.cc" "src/tcp/CMakeFiles/pert_tcp.dir/vegas.cc.o" "gcc" "src/tcp/CMakeFiles/pert_tcp.dir/vegas.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/pert_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pert_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
