# Empty dependencies file for pert_tcp.
# This may be replaced when dependencies are built.
