file(REMOVE_RECURSE
  "libpert_tcp.a"
)
