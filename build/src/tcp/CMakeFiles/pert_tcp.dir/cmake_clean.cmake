file(REMOVE_RECURSE
  "CMakeFiles/pert_tcp.dir/tcp_sender.cc.o"
  "CMakeFiles/pert_tcp.dir/tcp_sender.cc.o.d"
  "CMakeFiles/pert_tcp.dir/tcp_sink.cc.o"
  "CMakeFiles/pert_tcp.dir/tcp_sink.cc.o.d"
  "CMakeFiles/pert_tcp.dir/vegas.cc.o"
  "CMakeFiles/pert_tcp.dir/vegas.cc.o.d"
  "libpert_tcp.a"
  "libpert_tcp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pert_tcp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
