file(REMOVE_RECURSE
  "CMakeFiles/pert_stats.dir/stats.cc.o"
  "CMakeFiles/pert_stats.dir/stats.cc.o.d"
  "CMakeFiles/pert_stats.dir/time_series.cc.o"
  "CMakeFiles/pert_stats.dir/time_series.cc.o.d"
  "libpert_stats.a"
  "libpert_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pert_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
