file(REMOVE_RECURSE
  "libpert_stats.a"
)
