# Empty compiler generated dependencies file for pert_stats.
# This may be replaced when dependencies are built.
