file(REMOVE_RECURSE
  "libpert_sim.a"
)
