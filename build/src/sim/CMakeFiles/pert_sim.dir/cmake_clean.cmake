file(REMOVE_RECURSE
  "CMakeFiles/pert_sim.dir/scheduler.cc.o"
  "CMakeFiles/pert_sim.dir/scheduler.cc.o.d"
  "libpert_sim.a"
  "libpert_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pert_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
