# Empty dependencies file for pert_sim.
# This may be replaced when dependencies are built.
