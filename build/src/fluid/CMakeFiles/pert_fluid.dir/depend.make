# Empty dependencies file for pert_fluid.
# This may be replaced when dependencies are built.
