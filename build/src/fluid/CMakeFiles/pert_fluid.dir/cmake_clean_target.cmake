file(REMOVE_RECURSE
  "libpert_fluid.a"
)
