file(REMOVE_RECURSE
  "CMakeFiles/pert_fluid.dir/dde.cc.o"
  "CMakeFiles/pert_fluid.dir/dde.cc.o.d"
  "CMakeFiles/pert_fluid.dir/pert_model.cc.o"
  "CMakeFiles/pert_fluid.dir/pert_model.cc.o.d"
  "libpert_fluid.a"
  "libpert_fluid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pert_fluid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
