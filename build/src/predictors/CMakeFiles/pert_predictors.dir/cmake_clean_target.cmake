file(REMOVE_RECURSE
  "libpert_predictors.a"
)
