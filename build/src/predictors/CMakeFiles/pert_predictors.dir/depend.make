# Empty dependencies file for pert_predictors.
# This may be replaced when dependencies are built.
