file(REMOVE_RECURSE
  "CMakeFiles/pert_predictors.dir/classifier.cc.o"
  "CMakeFiles/pert_predictors.dir/classifier.cc.o.d"
  "CMakeFiles/pert_predictors.dir/trace_io.cc.o"
  "CMakeFiles/pert_predictors.dir/trace_io.cc.o.d"
  "libpert_predictors.a"
  "libpert_predictors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pert_predictors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
