# Empty dependencies file for pert_exp.
# This may be replaced when dependencies are built.
