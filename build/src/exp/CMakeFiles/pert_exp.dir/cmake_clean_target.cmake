file(REMOVE_RECURSE
  "libpert_exp.a"
)
