file(REMOVE_RECURSE
  "CMakeFiles/pert_exp.dir/cli.cc.o"
  "CMakeFiles/pert_exp.dir/cli.cc.o.d"
  "CMakeFiles/pert_exp.dir/dumbbell.cc.o"
  "CMakeFiles/pert_exp.dir/dumbbell.cc.o.d"
  "CMakeFiles/pert_exp.dir/multi_bottleneck.cc.o"
  "CMakeFiles/pert_exp.dir/multi_bottleneck.cc.o.d"
  "libpert_exp.a"
  "libpert_exp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pert_exp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
