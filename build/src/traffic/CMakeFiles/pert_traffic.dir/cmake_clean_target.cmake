file(REMOVE_RECURSE
  "libpert_traffic.a"
)
