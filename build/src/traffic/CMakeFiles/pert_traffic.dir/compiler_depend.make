# Empty compiler generated dependencies file for pert_traffic.
# This may be replaced when dependencies are built.
