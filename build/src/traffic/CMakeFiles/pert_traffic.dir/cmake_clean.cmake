file(REMOVE_RECURSE
  "CMakeFiles/pert_traffic.dir/web_session.cc.o"
  "CMakeFiles/pert_traffic.dir/web_session.cc.o.d"
  "libpert_traffic.a"
  "libpert_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pert_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
