# Empty dependencies file for pert_core.
# This may be replaced when dependencies are built.
