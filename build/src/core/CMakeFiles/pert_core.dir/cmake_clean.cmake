file(REMOVE_RECURSE
  "CMakeFiles/pert_core.dir/pert_sender.cc.o"
  "CMakeFiles/pert_core.dir/pert_sender.cc.o.d"
  "CMakeFiles/pert_core.dir/pi_emulation.cc.o"
  "CMakeFiles/pert_core.dir/pi_emulation.cc.o.d"
  "CMakeFiles/pert_core.dir/response_curve.cc.o"
  "CMakeFiles/pert_core.dir/response_curve.cc.o.d"
  "libpert_core.a"
  "libpert_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pert_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
