
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/pert_sender.cc" "src/core/CMakeFiles/pert_core.dir/pert_sender.cc.o" "gcc" "src/core/CMakeFiles/pert_core.dir/pert_sender.cc.o.d"
  "/root/repo/src/core/pi_emulation.cc" "src/core/CMakeFiles/pert_core.dir/pi_emulation.cc.o" "gcc" "src/core/CMakeFiles/pert_core.dir/pi_emulation.cc.o.d"
  "/root/repo/src/core/response_curve.cc" "src/core/CMakeFiles/pert_core.dir/response_curve.cc.o" "gcc" "src/core/CMakeFiles/pert_core.dir/response_curve.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tcp/CMakeFiles/pert_tcp.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/pert_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/pert_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pert_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
