file(REMOVE_RECURSE
  "libpert_core.a"
)
