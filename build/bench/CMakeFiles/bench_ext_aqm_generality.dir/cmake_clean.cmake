file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_aqm_generality.dir/bench_ext_aqm_generality.cc.o"
  "CMakeFiles/bench_ext_aqm_generality.dir/bench_ext_aqm_generality.cc.o.d"
  "bench_ext_aqm_generality"
  "bench_ext_aqm_generality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_aqm_generality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
