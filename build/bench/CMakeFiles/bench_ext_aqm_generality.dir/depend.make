# Empty dependencies file for bench_ext_aqm_generality.
# This may be replaced when dependencies are built.
