# Empty compiler generated dependencies file for bench_fig05_response_curve.
# This may be replaced when dependencies are built.
