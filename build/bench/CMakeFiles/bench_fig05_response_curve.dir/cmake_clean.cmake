file(REMOVE_RECURSE
  "CMakeFiles/bench_fig05_response_curve.dir/bench_fig05_response_curve.cc.o"
  "CMakeFiles/bench_fig05_response_curve.dir/bench_fig05_response_curve.cc.o.d"
  "bench_fig05_response_curve"
  "bench_fig05_response_curve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig05_response_curve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
