# Empty dependencies file for bench_fig03_predictors.
# This may be replaced when dependencies are built.
