file(REMOVE_RECURSE
  "CMakeFiles/bench_fig03_predictors.dir/bench_fig03_predictors.cc.o"
  "CMakeFiles/bench_fig03_predictors.dir/bench_fig03_predictors.cc.o.d"
  "bench_fig03_predictors"
  "bench_fig03_predictors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig03_predictors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
