file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_dynamics.dir/bench_fig12_dynamics.cc.o"
  "CMakeFiles/bench_fig12_dynamics.dir/bench_fig12_dynamics.cc.o.d"
  "bench_fig12_dynamics"
  "bench_fig12_dynamics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_dynamics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
