file(REMOVE_RECURSE
  "CMakeFiles/bench_fig06_bandwidth.dir/bench_fig06_bandwidth.cc.o"
  "CMakeFiles/bench_fig06_bandwidth.dir/bench_fig06_bandwidth.cc.o.d"
  "bench_fig06_bandwidth"
  "bench_fig06_bandwidth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig06_bandwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
