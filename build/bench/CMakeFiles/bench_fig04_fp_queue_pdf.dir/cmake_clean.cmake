file(REMOVE_RECURSE
  "CMakeFiles/bench_fig04_fp_queue_pdf.dir/bench_fig04_fp_queue_pdf.cc.o"
  "CMakeFiles/bench_fig04_fp_queue_pdf.dir/bench_fig04_fp_queue_pdf.cc.o.d"
  "bench_fig04_fp_queue_pdf"
  "bench_fig04_fp_queue_pdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig04_fp_queue_pdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
