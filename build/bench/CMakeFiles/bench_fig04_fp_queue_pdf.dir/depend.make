# Empty dependencies file for bench_fig04_fp_queue_pdf.
# This may be replaced when dependencies are built.
