# Empty dependencies file for bench_fig11_multibottleneck.
# This may be replaced when dependencies are built.
