
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig11_multibottleneck.cc" "bench/CMakeFiles/bench_fig11_multibottleneck.dir/bench_fig11_multibottleneck.cc.o" "gcc" "bench/CMakeFiles/bench_fig11_multibottleneck.dir/bench_fig11_multibottleneck.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/predictors/CMakeFiles/pert_predictors.dir/DependInfo.cmake"
  "/root/repo/build/src/fluid/CMakeFiles/pert_fluid.dir/DependInfo.cmake"
  "/root/repo/build/src/exp/CMakeFiles/pert_exp.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/pert_core.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/pert_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/traffic/CMakeFiles/pert_traffic.dir/DependInfo.cmake"
  "/root/repo/build/src/tcp/CMakeFiles/pert_tcp.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/pert_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pert_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
