file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_multibottleneck.dir/bench_fig11_multibottleneck.cc.o"
  "CMakeFiles/bench_fig11_multibottleneck.dir/bench_fig11_multibottleneck.cc.o.d"
  "bench_fig11_multibottleneck"
  "bench_fig11_multibottleneck.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_multibottleneck.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
