# Empty compiler generated dependencies file for bench_fig02_loss_correlation.
# This may be replaced when dependencies are built.
