# Empty dependencies file for bench_fig08_num_flows.
# This may be replaced when dependencies are built.
