file(REMOVE_RECURSE
  "CMakeFiles/bench_fig08_num_flows.dir/bench_fig08_num_flows.cc.o"
  "CMakeFiles/bench_fig08_num_flows.dir/bench_fig08_num_flows.cc.o.d"
  "bench_fig08_num_flows"
  "bench_fig08_num_flows.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_num_flows.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
