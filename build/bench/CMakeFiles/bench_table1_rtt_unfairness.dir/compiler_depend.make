# Empty compiler generated dependencies file for bench_table1_rtt_unfairness.
# This may be replaced when dependencies are built.
