file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_rtt_unfairness.dir/bench_table1_rtt_unfairness.cc.o"
  "CMakeFiles/bench_table1_rtt_unfairness.dir/bench_table1_rtt_unfairness.cc.o.d"
  "bench_table1_rtt_unfairness"
  "bench_table1_rtt_unfairness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_rtt_unfairness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
