# Empty dependencies file for bench_fig07_rtt.
# This may be replaced when dependencies are built.
