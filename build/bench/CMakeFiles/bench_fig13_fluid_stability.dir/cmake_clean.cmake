file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_fluid_stability.dir/bench_fig13_fluid_stability.cc.o"
  "CMakeFiles/bench_fig13_fluid_stability.dir/bench_fig13_fluid_stability.cc.o.d"
  "bench_fig13_fluid_stability"
  "bench_fig13_fluid_stability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_fluid_stability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
