# Empty dependencies file for bench_fig13_fluid_stability.
# This may be replaced when dependencies are built.
