# Empty dependencies file for bench_fig14_pert_pi.
# This may be replaced when dependencies are built.
