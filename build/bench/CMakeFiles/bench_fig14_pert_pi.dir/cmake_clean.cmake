file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_pert_pi.dir/bench_fig14_pert_pi.cc.o"
  "CMakeFiles/bench_fig14_pert_pi.dir/bench_fig14_pert_pi.cc.o.d"
  "bench_fig14_pert_pi"
  "bench_fig14_pert_pi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_pert_pi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
