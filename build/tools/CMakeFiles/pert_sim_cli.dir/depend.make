# Empty dependencies file for pert_sim_cli.
# This may be replaced when dependencies are built.
