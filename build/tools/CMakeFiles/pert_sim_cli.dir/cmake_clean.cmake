file(REMOVE_RECURSE
  "CMakeFiles/pert_sim_cli.dir/pert_sim.cc.o"
  "CMakeFiles/pert_sim_cli.dir/pert_sim.cc.o.d"
  "pert_sim"
  "pert_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pert_sim_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
