// Figure 5: the PERT probabilistic response curve (response probability vs
// the smoothed queueing-delay signal), gentle and non-gentle variants.
#include "common.h"
#include "core/pert_params.h"
#include "core/response_curve.h"
#include "exp/table.h"

int main(int argc, char** argv) {
  using namespace pert;
  const bench::Opts opt = bench::Opts::parse(argc, argv);
  opt.banner("Figure 5: PERT response curve",
             "0 below T_min=P+5ms; linear to p_max=0.05 at T_max=P+10ms; "
             "gentle ramp to 1 at 2*T_max");

  core::PertParams p;
  const core::ResponseCurve gentle(p);
  core::PertParams np = p;
  np.gentle = false;
  const core::ResponseCurve abrupt(np);

  exp::Table t({"queueing delay (ms)", "srtt_0.99 (P=60ms path)",
                "p(gentle)", "p(non-gentle)"});
  for (int ms = 0; ms <= 25; ++ms) {
    const double tq = ms * 1e-3;
    t.row({exp::fmt(ms, "%g"), exp::fmt(60.0 + ms, "%g ms"),
           exp::fmt(gentle.probability(tq), "%.4f"),
           exp::fmt(abrupt.probability(tq), "%.4f")});
  }
  t.print();
  return 0;
}
