// Extension: the paper's generality claim ("other AQM schemes can be
// potentially emulated at the end-host") carried out for three AQMs. Each
// end-host emulation runs over plain DropTail routers and is compared with
// its router-based counterpart (ECN-marking) plus the AVQ router baseline:
//
//   PERT (RED emulation)   vs  Sack/RED-ECN
//   PERT-PI                vs  Sack/PI-ECN
//   PERT-REM               vs  Sack/REM-ECN
//                               Sack/AVQ-ECN, Sack/Droptail (references)
#include <string>

#include "common.h"
#include "exp/dumbbell.h"
#include "exp/table.h"

int main(int argc, char** argv) {
  using namespace pert;
  const bench::Opts opt = bench::Opts::parse(argc, argv);
  opt.banner("Extension: emulating RED, PI, and REM from end hosts",
             "each emulation tracks its router counterpart's queue/drop "
             "behavior without router support");

  exp::Table t({"scheme", "where", "avg queue (pkts)", "drop rate",
                "ECN marks", "util (%)", "jain", "early resp."});
  for (exp::Scheme s :
       {exp::Scheme::kPert, exp::Scheme::kSackRedEcn, exp::Scheme::kPertPi,
        exp::Scheme::kSackPiEcn, exp::Scheme::kPertRem,
        exp::Scheme::kSackRemEcn, exp::Scheme::kSackAvqEcn,
        exp::Scheme::kSackDroptail}) {
    std::fprintf(stderr, "  running %s ...\n",
                 std::string(exp::to_string(s)).c_str());
    exp::DumbbellConfig cfg;
    cfg.scheme = s;
    cfg.bottleneck_bps = opt.full ? 150e6 : 50e6;
    cfg.rtt = 0.060;
    cfg.num_fwd_flows = 25;
    cfg.num_web_sessions = 25;
    cfg.start_window = opt.full ? 50.0 : 5.0;
    cfg.seed = 31;
    exp::Dumbbell d(cfg);
    const auto m = opt.full ? d.measure_window(100.0, 200.0) : d.measure_window(20.0, 60.0);
    t.row({std::string(exp::to_string(s)),
           exp::router_aqm(s) ? "router" : "end-host",
           exp::fmt(m.avg_queue_pkts, "%.1f"), exp::fmt(m.drop_rate, "%.2e"),
           std::to_string(m.ecn_marks), exp::fmt(100 * m.utilization, "%.1f"),
           exp::fmt(m.jain, "%.3f"), std::to_string(m.early_responses)});
  }
  t.print();
  return 0;
}
