// Extension: the paper's generality claim ("other AQM schemes can be
// potentially emulated at the end-host") carried out as a genuine
// cross-product sweep: every congestion-control module in the set runs
// against every bottleneck discipline in the set, one runner job per
// (cc, qdisc) cell. The paper's three emulation-vs-router pairs fall out of
// the product (pert/droptail vs sack/red, pert-pi/droptail vs sack/pi,
// pert-rem/droptail vs sack/rem); the extra rows show how the zoo (CUBIC,
// DCTCP senders; CoDel, FQ-CoDel, PIE disciplines) behaves on the same path.
//
// Cell keys are "ext_aqm/cc=<cc>/qdisc=<qdisc>" and each cell's seed is
// derived from the key, so the grid is bit-identical for any --jobs value.
#include <cstdio>
#include <string>
#include <vector>

#include "common.h"
#include "exp/dumbbell.h"
#include "exp/scheme.h"
#include "exp/table.h"
#include "runner/runner.h"
#include "runner/seed.h"

int main(int argc, char** argv) {
  using namespace pert;
  const bench::Opts opt = bench::Opts::parse(argc, argv);
  opt.banner("Extension: end-host emulation vs the router AQM zoo",
             "each end-host emulation over DropTail tracks its router "
             "counterpart; the cross product shows every cc x qdisc cell");

  const std::vector<std::string> ccs =
      opt.smoke ? std::vector<std::string>{"pert", "sack"}
                : std::vector<std::string>{"pert",  "pert-pi", "pert-rem",
                                           "sack",  "cubic",   "dctcp"};
  const std::vector<std::string> qdiscs =
      opt.smoke ? std::vector<std::string>{"droptail", "red"}
      : opt.full
          ? std::vector<std::string>{"droptail", "red", "pi", "rem", "avq",
                                     "codel", "fq-codel", "pie"}
          : std::vector<std::string>{"droptail", "red", "pi", "rem", "codel",
                                     "pie"};

  std::vector<exp::SchemeSpec> cells;
  for (const std::string& cc : ccs)
    for (const std::string& qd : qdiscs)
      cells.push_back(exp::parse_scheme_spec(cc + "/" + qd));

  std::vector<runner::Job> jobs;
  for (const exp::SchemeSpec& s : cells) {
    exp::DumbbellConfig cfg;
    cfg.scheme = s;
    cfg.bottleneck_bps = opt.full ? 150e6 : 50e6;
    cfg.rtt = 0.060;
    cfg.num_fwd_flows = 25;
    cfg.num_web_sessions = opt.smoke ? 0 : 25;
    cfg.start_window = opt.full ? 50.0 : 5.0;
    cfg.seed = 31;
    cfg.sim_threads = static_cast<std::int32_t>(opt.sim_threads);
    runner::Job job;
    job.key = "ext_aqm/cc=" + s.cc + "/qdisc=" + s.qdisc;
    job.seed = runner::derive_seed(cfg.seed, job.key);
    job.tags = {{"cc", s.cc}, {"qdisc", s.qdisc}};
    cfg.seed = job.seed;
    const std::pair<double, double> win =
        opt.full ? std::pair{100.0, 200.0}
        : opt.smoke ? std::pair{5.0, 10.0}
                    : std::pair{20.0, 60.0};
    job.run = [cfg, win](const runner::Job& cell) mutable {
      cfg.watchdog.cancel = cell.cancel.flag();
      exp::Dumbbell d(cfg);
      runner::JobOutput out;
      out.metrics = d.measure_window(win.first, win.second);
      out.events = d.network().total_dispatched();
      out.registry = d.obs().registry();
      return out;
    };
    jobs.push_back(std::move(job));
  }

  runner::RunnerOptions ropts = opt.runner();
  ropts.name = "ext_aqm_generality";
  const runner::RunReport report = runner::ExperimentRunner(ropts).run(jobs);

  exp::Table t({"scheme", "where", "avg queue (pkts)", "drop rate",
                "ECN marks", "util (%)", "jain", "early resp."});
  // Map results back to grid cells by index (under --shard only this
  // shard's cells ran; absent cells print as "-").
  std::vector<const runner::JobResult*> by_cell(cells.size(), nullptr);
  for (const runner::JobResult& r : report.results)
    if (r.cell < by_cell.size()) by_cell[r.cell] = &r;
  int rc = 0;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const exp::SchemeSpec& s = cells[i];
    const runner::JobResult* r = by_cell[i];
    if (r == nullptr || !r->ok) {
      if (r != nullptr && !r->ok) {
        std::fprintf(stderr, "error: %s failed: %s\n", r->key.c_str(),
                     r->error.c_str());
        rc = 1;
      }
      t.row({exp::to_string(s), "-", "-", "-", "-", "-", "-", "-"});
      continue;
    }
    const exp::WindowMetrics& m = r->metrics;
    t.row({exp::to_string(s), s.router_aqm() ? "router" : "end-host",
           exp::fmt(m.avg_queue_pkts, "%.1f"), exp::fmt(m.drop_rate, "%.2e"),
           std::to_string(m.ecn_marks), exp::fmt(100 * m.utilization, "%.1f"),
           exp::fmt(m.jain, "%.3f"), std::to_string(m.early_responses)});
  }
  t.print();
  opt.export_report(report);
  return rc;
}
