// Figure 7: impact of end-to-end RTT (paper: 150 Mbps, 50 flows,
// RTT 10 ms - 1 s).
//
// Expected shape: PERT's queue and drop rate track SACK/RED-ECN; adaptive
// RED's utilization slightly better than PERT's fixed thresholds; Jain high.
#include "common.h"
#include "sweep.h"

int main(int argc, char** argv) {
  using namespace pert;
  const bench::Opts opt = bench::Opts::parse(argc, argv);
  opt.banner("Figure 7: impact of end-to-end RTT",
             "PERT ~ RED-ECN queue/drops; RED-ECN util slightly above PERT; "
             "jain stays high");

  bench::SweepSpec spec;
  spec.name = "fig07_rtt";
  spec.x_name = "rtt";
  spec.xs = opt.full
                ? std::vector<double>{0.010, 0.030, 0.060, 0.100, 0.300, 1.0}
                : std::vector<double>{0.010, 0.030, 0.060, 0.100, 0.300};
  for (double r : spec.xs) spec.x_labels.push_back(exp::fmt(r * 1e3, "%g ms"));
  spec.schemes = {exp::Scheme::kPert, exp::Scheme::kSackDroptail,
                  exp::Scheme::kSackRedEcn, exp::Scheme::kVegas};
  const double bw = opt.full ? 150e6 : 100e6;
  spec.config = [&](double rtt, const exp::SchemeSpec& s) {
    exp::DumbbellConfig cfg;
    cfg.scheme = s;
    cfg.bottleneck_bps = bw;
    cfg.rtt = rtt;
    cfg.num_fwd_flows = 50;
    cfg.start_window = opt.full ? 50.0 : 10.0;
    cfg.seed = 7;
    return cfg;
  };
  spec.window = [&](double rtt) {
    // Long-RTT cases need longer convergence and measurement.
    const double warm = std::max(opt.full ? 100.0 : 20.0, 40.0 * rtt);
    const double meas = std::max(opt.full ? 200.0 : 40.0, 60.0 * rtt);
    return std::pair{warm, meas};
  };
  opt.export_report(bench::run_dumbbell_sweep(spec, opt.runner(), opt.trace_dir, opt.worker));
  return 0;
}
