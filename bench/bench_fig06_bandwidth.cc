// Figure 6: impact of bottleneck link bandwidth (paper: 1 Mbps - 1 Gbps,
// RTT 60 ms, flow count scaled so the link can be utilized).
//
// Expected shape: PERT's average queue and drop rate track SACK/RED-ECN
// (both far below SACK/DropTail); PERT utilization dips at small bandwidths
// (short buffers) but matches elsewhere; PERT Jain ~ 1, Vegas Jain low.
#include "common.h"
#include "sweep.h"

int main(int argc, char** argv) {
  using namespace pert;
  const bench::Opts opt = bench::Opts::parse(argc, argv);
  opt.banner("Figure 6: impact of bottleneck bandwidth",
             "PERT ~ RED-ECN on queue/drops; DropTail queue high; "
             "PERT jain ~1, Vegas jain low");

  bench::SweepSpec spec;
  spec.name = "fig06_bandwidth";
  spec.x_name = "bandwidth";
  if (opt.full)
    spec.xs = {1e6, 10e6, 100e6, 500e6, 1000e6};
  else
    spec.xs = {1e6, 5e6, 25e6, 100e6, 250e6};
  for (double bw : spec.xs)
    spec.x_labels.push_back(exp::fmt(bw / 1e6, "%g Mbps"));
  spec.schemes = {exp::Scheme::kPert, exp::Scheme::kSackDroptail,
                  exp::Scheme::kSackRedEcn, exp::Scheme::kVegas};
  spec.config = [&](double bw, const exp::SchemeSpec& s) {
    exp::DumbbellConfig cfg;
    cfg.scheme = s;
    cfg.bottleneck_bps = bw;
    cfg.rtt = 0.060;
    // Scale the flow population with capacity so the link can be filled.
    cfg.num_fwd_flows = static_cast<std::int32_t>(
        std::max(10.0, std::min(opt.full ? 500.0 : 250.0, bw / 1e6)));
    cfg.start_window = opt.full ? 50.0 : 10.0;
    cfg.seed = 20070827;
    return cfg;
  };
  spec.window = [&](double) {
    return opt.full ? std::pair{100.0, 200.0} : std::pair{25.0, 50.0};
  };
  opt.export_report(bench::run_dumbbell_sweep(spec, opt.runner(), opt.trace_dir, opt.worker));
  return 0;
}
