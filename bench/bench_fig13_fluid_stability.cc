// Figure 13: the PERT fluid model.
//   (a) minimum stable sampling interval delta vs the lower bound N- on the
//       number of flows (C = 10 Mbps = 1000 pkt/s, R+ = 200 ms, pmax = 0.1,
//       Tmax = 100 ms, Tmin = 50 ms, alpha = 0.99)  — eq. (13);
//   (b)-(d) DDE trajectories of (14) at R = 100 / 160 / 171 ms
//       (C = 100 pkt/s, N = 5, delta = 0.1 ms): stable, stable after
//       decaying oscillations, and persistently oscillating.
#include <cmath>

#include "common.h"
#include "exp/table.h"
#include "fluid/pert_model.h"

int main(int argc, char** argv) {
  using namespace pert;
  const bench::Opts opt = bench::Opts::parse(argc, argv);
  opt.banner("Figure 13: fluid model of PERT",
             "(a) delta_min decreases toward ~0.1 s by N-=40; (b) R=100ms "
             "monotone stable; (c) R=160ms decaying oscillations; (d) "
             "R=171ms persistent oscillations");

  // ---- (a) minimum delta vs N- ----
  {
    fluid::PertModelParams p;
    p.rtt = 0.200;
    p.capacity = 1000;  // 10 Mbps at 1250-byte packets
    p.p_max = 0.1;
    p.t_max = 0.100;
    p.t_min = 0.050;
    p.alpha = 0.99;
    exp::Table t({"N-", "min delta (s)"});
    for (double n : {1.0, 5.0, 10.0, 15.0, 20.0, 25.0, 30.0, 35.0, 40.0,
                     45.0, 50.0}) {
      p.n_flows = n;
      t.row({exp::fmt(n, "%g"), exp::fmt(fluid::min_delta(p), "%.4f")});
    }
    std::printf("(a) minimum sampling interval vs N-\n");
    t.print();
    std::printf("\n");
  }

  // ---- (b)-(d) trajectories ----
  fluid::PertModelParams p;
  p.capacity = 100;  // 1 Mbps at 1250-byte packets
  p.n_flows = 5;
  p.p_max = 0.1;
  p.t_max = 0.100;
  p.t_min = 0.050;
  p.alpha = 0.99;
  p.delta = 1e-4;

  const double duration = opt.full ? 500.0 : 300.0;
  for (double r : {0.100, 0.160, 0.171}) {
    p.rtt = r;
    const auto eq = fluid::equilibrium(p);
    const bool thm1 = fluid::thm1_stable(p);
    const auto traj = fluid::simulate(p, duration, {1, 1, 1}, 5e-4, 10.0);
    const double tail = fluid::tail_window_error(traj, p);
    std::printf("R = %.0f ms: Theorem 1 %s, W* = %.2f pkts, "
                "tail window error = %.3f -> %s\n",
                r * 1e3, thm1 ? "satisfied" : "violated", eq.window, tail,
                tail < 0.10 ? "STABLE" : "OSCILLATING");
    exp::Table t({"t (s)", "W (pkts)", "Tq inst (s)", "Tq smooth (s)"});
    for (std::size_t i = 0; i < traj.size(); i += 3) {
      const auto& pt = traj[i];
      t.row({exp::fmt(pt.t, "%.0f"), exp::fmt(pt.window, "%.3f"),
             exp::fmt(pt.tq_inst, "%.4f"), exp::fmt(pt.tq_smooth, "%.4f")});
    }
    t.print();
    std::printf("\n");
  }
  return 0;
}
