// Shared scenario for the Section 2 measurement study (Figures 2, 3, 4):
// a 100 Mbps / 20 ms-bottleneck dumbbell with a 750-packet queue, long-term
// SACK flows in both directions with heterogeneous RTTs plus web sessions;
// one tagged 60 ms flow records its per-ACK trace.
#pragma once

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common.h"
#include "exp/dumbbell.h"
#include "predictors/classic.h"
#include "predictors/trace_recorder.h"

namespace pert::bench {

struct CaseSpec {
  std::string name;
  std::int32_t long_term;  ///< total long-term flows (split fwd/rev)
  std::int32_t web;
};

inline std::vector<CaseSpec> paper_cases(bool full) {
  if (full)
    return {{"case1", 50, 100},  {"case2", 50, 500},  {"case3", 50, 1000},
            {"case4", 100, 100}, {"case5", 100, 500}, {"case6", 100, 1000}};
  // Reduced grid: lighter long-term load with proportionally heavier web
  // bursts, so both regimes appear — clean loss-terminated episodes *and*
  // web-burst episodes that dissolve without loss (the false-positive
  // source Figures 3/4 are about).
  return {{"case1", 4, 60},   {"case2", 10, 60},  {"case3", 10, 120},
          {"case4", 20, 60},  {"case5", 20, 100}, {"case6", 40, 100}};
}

/// Tagged-flow RTT (the paper observes a 60 ms flow, threshold 65 ms).
inline constexpr double kTaggedRtt = 0.060;
inline constexpr double kRttThreshold = 0.065;

/// Runs one case and returns the tagged flow's trace.
inline predictors::FlowTrace record_case(const CaseSpec& c, bool full,
                                         std::uint64_t seed = 2) {
  exp::DumbbellConfig cfg;
  cfg.scheme = exp::Scheme::kSackDroptail;
  cfg.bottleneck_bps = 100e6;
  cfg.rtt = kTaggedRtt;
  cfg.buffer_pkts = 750;
  // Heterogeneous RTTs; index 0 keeps the tagged 60 ms path.
  cfg.flow_rtts = {kTaggedRtt, 0.030, 0.045, 0.080, 0.100, 0.120, 0.150};
  cfg.num_fwd_flows = c.long_term / 2;
  cfg.num_rev_flows = c.long_term - c.long_term / 2;
  cfg.num_web_sessions = c.web;
  cfg.start_window = 10.0;
  cfg.seed = seed;
  exp::Dumbbell d(cfg);

  const double warmup = 20.0;
  const double duration = full ? 1000.0 : 120.0;
  d.network().run_until(warmup);  // instrument only after convergence
  predictors::TraceRecorder rec(d.fwd_sender(0), d.fwd_queue());
  d.network().run_until(warmup + duration);
  return rec.take();
}

}  // namespace pert::bench
