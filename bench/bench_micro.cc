// Micro-benchmarks (google-benchmark): scheduler throughput, queue
// disciplines, RNG, TCP ACK-path, and a small end-to-end simulation.
#include <benchmark/benchmark.h>

#include <memory>

#include "core/response_curve.h"
#include "exp/dumbbell.h"
#include "exp/multi_bottleneck.h"
#include "net/network.h"
#include "net/pi_queue.h"
#include "net/red_queue.h"
#include "sim/random.h"
#include "sim/scheduler.h"
#include "tcp/tcp_sender.h"
#include "tcp/tcp_sink.h"

namespace {

using namespace pert;

/// One schedule + (amortized) one dispatch per iteration, so the reported
/// ns/op is per *event*. An earlier version scheduled and drained 64 events
/// inside each iteration, silently reporting ns per 64-event block — any
/// scheduler regression under ~64x was invisible in the committed baseline.
void BM_SchedulerScheduleDispatch(benchmark::State& state) {
  sim::Scheduler s;
  std::uint64_t n = 0;
  int i = 0;
  for (auto _ : state) {
    s.schedule_in(static_cast<double>(i % 7) * 1e-6, [&n] { ++n; });
    if (++i % 64 == 0) s.run();
  }
  s.run();
  benchmark::DoNotOptimize(n);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SchedulerScheduleDispatch);

/// Same per-event accounting, but every group of 64 events shares one
/// timestamp, so the drain goes through the batched dispatch path.
void BM_SchedulerBatchDispatch(benchmark::State& state) {
  sim::Scheduler s;
  std::uint64_t n = 0;
  int i = 0;
  for (auto _ : state) {
    s.schedule_at(s.now() + 1e-6, [&n] { ++n; });
    if (++i % 64 == 0) s.run_until(s.now() + 1e-6);
  }
  s.run();
  benchmark::DoNotOptimize(n);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SchedulerBatchDispatch);

void BM_SchedulerCancel(benchmark::State& state) {
  sim::Scheduler s;
  for (auto _ : state) {
    auto id = s.schedule_in(1.0, [] {});
    s.cancel(id);
  }
}
BENCHMARK(BM_SchedulerCancel);

void BM_DropTailEnqueueDequeue(benchmark::State& state) {
  sim::Scheduler s;
  net::DropTailQueue q(s, 1024);
  for (auto _ : state) {
    auto p = net::make_packet();
    p->size_bytes = 1040;
    q.enqueue(std::move(p));
    benchmark::DoNotOptimize(q.dequeue());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DropTailEnqueueDequeue);

void BM_RedEnqueueDequeue(benchmark::State& state) {
  sim::Scheduler s;
  net::RedParams rp;
  rp.min_th = 200;
  rp.max_th = 600;
  rp.adaptive = false;
  net::RedQueue q(s, 1024, rp);
  for (auto _ : state) {
    auto p = net::make_packet();
    p->size_bytes = 1040;
    q.enqueue(std::move(p));
    benchmark::DoNotOptimize(q.dequeue());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RedEnqueueDequeue);

void BM_PiEnqueueDequeue(benchmark::State& state) {
  sim::Scheduler s;
  net::PiQueue q(s, 1024, net::PiDesign{});
  for (auto _ : state) {
    auto p = net::make_packet();
    p->size_bytes = 1040;
    p->ecn = net::Ecn::Ect0;
    q.enqueue(std::move(p));
    benchmark::DoNotOptimize(q.dequeue());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PiEnqueueDequeue);

void BM_RngUniform(benchmark::State& state) {
  sim::Rng r(1);
  double acc = 0;
  for (auto _ : state) acc += r.uniform();
  benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_RngUniform);

void BM_RngBoundedPareto(benchmark::State& state) {
  sim::Rng r(1);
  double acc = 0;
  for (auto _ : state) acc += r.bounded_pareto(1.2, 2000, 5e6);
  benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_RngBoundedPareto);

void BM_ResponseCurve(benchmark::State& state) {
  core::ResponseCurve c{core::PertParams{}};
  double tq = 0, acc = 0;
  for (auto _ : state) {
    acc += c.probability(tq);
    tq += 1e-6;
    if (tq > 0.025) tq = 0;
  }
  benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_ResponseCurve);

/// Forwarding micro: batch of packets through node -> link -> node delivery.
/// Exercises the full per-hop path (route lookup, queue, serialization event,
/// propagation event, receive) without TCP on top.
void BM_LinkForward(benchmark::State& state) {
  net::Network net(1);
  auto* a = net.add_node();
  auto* b = net.add_node();
  net.add_link(a, b, 1e9, 1e-4,
               std::make_unique<net::DropTailQueue>(net.sched(), 1024));
  net.compute_routes();
  struct CountSink final : net::Agent {
    std::uint64_t n = 0;
    void receive(net::PacketPtr) override { ++n; }
  };
  auto* sink = net.add_agent<CountSink>(b, 1);
  for (auto _ : state) {
    for (int i = 0; i < 64; ++i) {
      auto p = net.make_packet();
      p->dst = b->id();
      p->dst_port = 1;
      a->send(std::move(p));
    }
    net.sched().run();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(sink->n));
  state.counters["pkts/s"] = benchmark::Counter(
      static_cast<double>(sink->n), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_LinkForward);

/// End-to-end: a loaded 10 Mbps dumbbell (8 TCP flows over a shared
/// bottleneck) advanced one simulated second per iteration. Reports both
/// packets/sec (bottleneck departures per wall second) and events/sec.
void BM_EndToEndDumbbell(benchmark::State& state) {
  net::Network net(1);
  auto* lhs = net.add_node();
  auto* r1 = net.add_node();
  auto* r2 = net.add_node();
  auto* rhs = net.add_node();
  net.add_duplex_droptail(lhs, r1, 100e6, 0.002, 1000);
  auto [fwd, rev] = net.add_duplex_droptail(r1, r2, 10e6, 0.02, 100);
  net.add_duplex_droptail(r2, rhs, 100e6, 0.002, 1000);
  net.compute_routes();
  tcp::TcpConfig cfg;
  for (int i = 0; i < 8; ++i) {
    net.add_agent<tcp::TcpSink>(rhs, 10 + i, net, cfg);
    auto* s = net.add_agent<tcp::TcpSender>(lhs, 10 + i, net, cfg, i);
    s->connect(rhs->id(), 10 + i);
    s->start(0.0);
  }
  double t = 1.0;
  for (auto _ : state) {
    net.run_until(t);
    t += 1.0;
  }
  const auto stats = fwd->snapshot();
  state.SetItemsProcessed(static_cast<std::int64_t>(stats.pkts_tx));
  state.counters["pkts/s"] = benchmark::Counter(
      static_cast<double>(stats.pkts_tx), benchmark::Counter::kIsRate);
  state.counters["events/s"] = benchmark::Counter(
      static_cast<double>(net.sched().dispatched()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_EndToEndDumbbell);

/// End-to-end: one second of simulated time on a loaded 10 Mbps dumbbell.
void BM_EndToEndSimSecond(benchmark::State& state) {
  net::Network net(1);
  auto* a = net.add_node();
  auto* b = net.add_node();
  net.add_link(a, b, 10e6, 0.02,
               std::make_unique<net::DropTailQueue>(net.sched(), 100));
  net.add_link(b, a, 10e6, 0.02,
               std::make_unique<net::DropTailQueue>(net.sched(), 1000));
  net.compute_routes();
  tcp::TcpConfig cfg;
  for (int i = 0; i < 4; ++i) {
    net.add_agent<tcp::TcpSink>(b, 10 + i, net, cfg);
    auto* s = net.add_agent<tcp::TcpSender>(a, 10 + i, net, cfg, i);
    s->connect(b->id(), 10 + i);
    s->start(0.0);
  }
  double t = 1.0;
  for (auto _ : state) {
    net.run_until(t);
    t += 1.0;
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(net.sched().dispatched()));
}
BENCHMARK(BM_EndToEndSimSecond);

/// Paper-scale dumbbell (PERT, 150 Mbps): one simulated second per
/// iteration. The benchmark argument is sim_threads: 0 = the classic
/// single-scheduler path, >= 1 = the sharded parallel engine with that many
/// workers (1 is the determinism oracle; speedup needs real cores). The
/// watchdog is off in all variants so classic and sharded simulate the same
/// event population. Wall-clock (UseRealTime) is the honest metric when
/// worker threads are doing the simulating.
void end_to_end_dumbbell(benchmark::State& state, std::int32_t flows) {
  exp::DumbbellConfig c;
  c.scheme = exp::Scheme::kPert;
  c.bottleneck_bps = 150e6;
  c.rtt = 0.060;
  c.num_fwd_flows = flows;
  c.start_window = 2.0;
  c.watchdog.enabled = false;
  c.sim_threads = static_cast<std::int32_t>(state.range(0));
  exp::Dumbbell d(c);
  d.network().run_until(3.0);  // starts + slow start outside the timed loop
  double t = 3.0;
  const std::int64_t before =
      static_cast<std::int64_t>(d.network().total_dispatched());
  for (auto _ : state) {
    t += 1.0;
    d.network().run_until(t);
  }
  const std::int64_t events =
      static_cast<std::int64_t>(d.network().total_dispatched()) - before;
  state.SetItemsProcessed(events);
  state.counters["events/s"] = benchmark::Counter(
      static_cast<double>(events), benchmark::Counter::kIsRate);
}

void BM_EndToEndDumbbell100Flows(benchmark::State& state) {
  end_to_end_dumbbell(state, 100);
}
BENCHMARK(BM_EndToEndDumbbell100Flows)
    ->Arg(0)
    ->Arg(1)
    ->Arg(4)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void BM_EndToEndDumbbell1000Flows(benchmark::State& state) {
  end_to_end_dumbbell(state, 1000);
}
BENCHMARK(BM_EndToEndDumbbell1000Flows)
    ->Arg(0)
    ->Arg(1)
    ->Arg(4)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

/// Paper-scale Figure 10/11 chain (6 routers, 20 hosts per cloud): one
/// simulated second per iteration; argument = sim_threads as above (the
/// sharded layout is one shard per router cloud).
void BM_EndToEndMultiBottleneck(benchmark::State& state) {
  exp::MultiBottleneckConfig c;
  c.scheme = exp::Scheme::kPert;
  c.start_window = 2.0;
  c.watchdog.enabled = false;
  c.sim_threads = static_cast<std::int32_t>(state.range(0));
  exp::MultiBottleneck m(c);
  m.network().run_until(3.0);
  double t = 3.0;
  const std::int64_t before =
      static_cast<std::int64_t>(m.network().total_dispatched());
  for (auto _ : state) {
    t += 1.0;
    m.network().run_until(t);
  }
  const std::int64_t events =
      static_cast<std::int64_t>(m.network().total_dispatched()) - before;
  state.SetItemsProcessed(events);
  state.counters["events/s"] = benchmark::Counter(
      static_cast<double>(events), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_EndToEndMultiBottleneck)
    ->Arg(0)
    ->Arg(1)
    ->Arg(4)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
