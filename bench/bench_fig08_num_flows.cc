// Figure 8: impact of the number of long-term flows (paper: 500 Mbps,
// RTT 60 ms, 1 - 1000 flows).
//
// Expected shape: PERT queue/drops ~ RED-ECN even at 1000 flows; Vegas queue
// and drops grow with the flow count (it pins alpha..beta packets per flow);
// Vegas jain low, PERT jain high.
#include "common.h"
#include "sweep.h"

int main(int argc, char** argv) {
  using namespace pert;
  const bench::Opts opt = bench::Opts::parse(argc, argv);
  opt.banner("Figure 8: impact of the number of long-term flows",
             "Vegas queue grows with N; PERT stays low ~ RED-ECN; "
             "PERT jain high even at large N");

  bench::SweepSpec spec;
  spec.name = "fig08_num_flows";
  spec.x_name = "flows";
  spec.xs = opt.smoke ? std::vector<double>{2, 4, 8}
            : opt.full ? std::vector<double>{1, 10, 50, 100, 400, 1000}
                       : std::vector<double>{1, 10, 50, 100, 400};
  for (double n : spec.xs) spec.x_labels.push_back(exp::fmt(n, "%g"));
  spec.schemes = opt.schemes_or(
      opt.smoke ? std::vector<exp::SchemeSpec>{exp::Scheme::kPert,
                                               exp::Scheme::kSackDroptail}
                : std::vector<exp::SchemeSpec>{
                      exp::Scheme::kPert, exp::Scheme::kSackDroptail,
                      exp::Scheme::kSackRedEcn, exp::Scheme::kVegas});
  const double bw = opt.smoke ? 20e6 : opt.full ? 500e6 : 250e6;
  spec.config = [&](double n, const exp::SchemeSpec& s) {
    exp::DumbbellConfig cfg;
    cfg.scheme = s;
    cfg.bottleneck_bps = bw;
    cfg.rtt = 0.060;
    cfg.num_fwd_flows = static_cast<std::int32_t>(n);
    cfg.start_window = opt.smoke ? 2.0 : opt.full ? 50.0 : 10.0;
    cfg.seed = 8;
    cfg.sim_threads = static_cast<std::int32_t>(opt.sim_threads);
    return cfg;
  };
  spec.window = [&](double) {
    return opt.smoke ? std::pair{5.0, 10.0}
           : opt.full ? std::pair{100.0, 200.0}
                      : std::pair{20.0, 40.0};
  };
  opt.export_report(bench::run_dumbbell_sweep(spec, opt.runner(), opt.trace_dir, opt.worker));
  return 0;
}
