// Figure 9: impact of web (bursty) traffic (paper: 150 Mbps, RTT 60 ms,
// 50 long-term flows, 10 - 1000 web sessions per Feldmann et al.).
//
// Expected shape: PERT keeps the queue low and losses ~0 as web load grows,
// like SACK/RED-ECN; PERT utilization slightly below RED-ECN; jain of the
// long-term flows stays high.
#include "common.h"
#include "sweep.h"

int main(int argc, char** argv) {
  using namespace pert;
  const bench::Opts opt = bench::Opts::parse(argc, argv);
  opt.banner("Figure 9: impact of web sessions",
             "queue stays low, ~zero drops for PERT and RED-ECN under "
             "increasing web load; long-term jain high");

  bench::SweepSpec spec;
  spec.name = "fig09_web_traffic";
  spec.x_name = "web sessions";
  spec.xs = opt.full ? std::vector<double>{10, 50, 100, 400, 1000}
                     : std::vector<double>{10, 50, 100, 250};
  for (double n : spec.xs) spec.x_labels.push_back(exp::fmt(n, "%g"));
  spec.schemes = {exp::Scheme::kPert, exp::Scheme::kSackDroptail,
                  exp::Scheme::kSackRedEcn, exp::Scheme::kVegas};
  const double bw = opt.full ? 150e6 : 100e6;
  spec.config = [&](double n, const exp::SchemeSpec& s) {
    exp::DumbbellConfig cfg;
    cfg.scheme = s;
    cfg.bottleneck_bps = bw;
    cfg.rtt = 0.060;
    cfg.num_fwd_flows = 50;
    cfg.num_web_sessions = static_cast<std::int32_t>(n);
    cfg.start_window = opt.full ? 50.0 : 10.0;
    cfg.seed = 9;
    return cfg;
  };
  spec.window = [&](double) {
    return opt.full ? std::pair{100.0, 200.0} : std::pair{20.0, 40.0};
  };
  opt.export_report(bench::run_dumbbell_sweep(spec, opt.runner(), opt.trace_dir, opt.worker));
  return 0;
}
