// Dumbbell parameter-sweep runner shared by the Figure 6-9 and 14 benches:
// runs every (x, scheme) cell and prints one table per metric, matching the
// four panels the paper plots (avg queue, drop rate, utilization, Jain).
#pragma once

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "exp/dumbbell.h"
#include "exp/table.h"

namespace pert::bench {

struct SweepSpec {
  std::string x_name;
  std::vector<double> xs;
  std::vector<std::string> x_labels;  ///< same length as xs
  std::vector<exp::Scheme> schemes;
  /// Builds the scenario for one cell.
  std::function<exp::DumbbellConfig(double x, exp::Scheme s)> config;
  /// Measurement window per x: {warmup, measure} seconds.
  std::function<std::pair<double, double>(double x)> window;
};

inline void run_dumbbell_sweep(const SweepSpec& spec) {
  const std::size_t nx = spec.xs.size(), ns = spec.schemes.size();
  std::vector<std::vector<exp::WindowMetrics>> grid(
      nx, std::vector<exp::WindowMetrics>(ns));

  for (std::size_t i = 0; i < nx; ++i) {
    for (std::size_t j = 0; j < ns; ++j) {
      const auto [warmup, measure] = spec.window(spec.xs[i]);
      std::fprintf(stderr, "  running %s=%s scheme=%s ...\n",
                   spec.x_name.c_str(), spec.x_labels[i].c_str(),
                   std::string(exp::to_string(spec.schemes[j])).c_str());
      exp::Dumbbell d(spec.config(spec.xs[i], spec.schemes[j]));
      grid[i][j] = d.run(warmup, measure);
    }
  }

  struct MetricDef {
    const char* name;
    const char* fmt;
    double (*get)(const exp::WindowMetrics&);
  };
  const MetricDef metrics[] = {
      {"avg queue (pkts)", "%.1f",
       [](const exp::WindowMetrics& m) { return m.avg_queue_pkts; }},
      {"drop rate", "%.2e",
       [](const exp::WindowMetrics& m) { return m.drop_rate; }},
      {"utilization (%)", "%.1f",
       [](const exp::WindowMetrics& m) { return 100.0 * m.utilization; }},
      {"jain fairness", "%.3f",
       [](const exp::WindowMetrics& m) { return m.jain; }},
  };

  for (const auto& md : metrics) {
    std::printf("-- %s --\n", md.name);
    std::vector<std::string> headers{spec.x_name};
    for (auto s : spec.schemes) headers.emplace_back(exp::to_string(s));
    exp::Table t(headers);
    for (std::size_t i = 0; i < nx; ++i) {
      std::vector<std::string> row{spec.x_labels[i]};
      for (std::size_t j = 0; j < ns; ++j)
        row.push_back(exp::fmt(md.get(grid[i][j]), md.fmt));
      t.row(std::move(row));
    }
    t.print();
    std::printf("\n");
  }
}

}  // namespace pert::bench
