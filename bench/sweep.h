// Dumbbell parameter-sweep runner shared by the Figure 6-9 and 14 benches:
// every (x, scheme) cell is one self-contained runner::Job; the grid executes
// on the experiment runner (serial with --jobs 1, parallel otherwise) and the
// collected results print one table per metric, matching the four panels the
// paper plots (avg queue, drop rate, utilization, Jain).
//
// Each cell's RNG seed is derived from the bench's base seed and the cell key
// (runner::derive_seed), so the grid is bit-identical for any --jobs value.
#pragma once

#include <cstdio>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "exp/dumbbell.h"
#include "exp/table.h"
#include "runner/runner.h"
#include "runner/seed.h"

namespace pert::bench {

struct SweepSpec {
  /// Bench id: prefixes job keys and names the RunReport (JSON export).
  std::string name = "dumbbell_sweep";
  std::string x_name;
  std::vector<double> xs;
  std::vector<std::string> x_labels;  ///< same length as xs
  std::vector<exp::Scheme> schemes;
  /// Builds the scenario for one cell.
  std::function<exp::DumbbellConfig(double x, exp::Scheme s)> config;
  /// Measurement window per x: {warmup, measure} seconds.
  std::function<std::pair<double, double>(double x)> window;
};

/// Executes the sweep grid on the experiment runner and prints the metric
/// tables. Returns the full report (per-cell metrics, seeds, event counts,
/// wall times) for JSON export.
inline runner::RunReport run_dumbbell_sweep(
    const SweepSpec& spec, runner::RunnerOptions ropts = {}) {
  const std::size_t nx = spec.xs.size(), ns = spec.schemes.size();

  // Materialize every cell's config and window up front, on this thread:
  // job bodies must not share the spec's callbacks.
  std::vector<runner::Job> jobs;
  jobs.reserve(nx * ns);
  for (std::size_t i = 0; i < nx; ++i) {
    for (std::size_t j = 0; j < ns; ++j) {
      const auto [warmup, measure] = spec.window(spec.xs[i]);
      exp::DumbbellConfig cfg = spec.config(spec.xs[i], spec.schemes[j]);
      runner::Job job;
      job.key = spec.name + "/" + spec.x_name + "=" + spec.x_labels[i] + "/" +
                std::string(exp::to_string(spec.schemes[j]));
      job.seed = runner::derive_seed(cfg.seed, job.key);
      job.tags = {{"x", spec.x_labels[i]},
                  {"scheme", std::string(exp::to_string(spec.schemes[j]))}};
      cfg.seed = job.seed;
      job.run = [cfg, warmup = warmup,
                 measure = measure](const runner::Job& j) mutable {
        // Cooperative timeout: the scenario watchdog polls the runner's
        // cancel flag (no effect on results; the flag consumes no RNG).
        cfg.watchdog.cancel = j.cancel.flag();
        exp::Dumbbell d(cfg);
        runner::JobOutput out;
        out.metrics = d.run(warmup, measure);
        out.events = d.network().sched().dispatched();
        return out;
      };
      jobs.push_back(std::move(job));
    }
  }

  ropts.name = spec.name;
  runner::ExperimentRunner exec(ropts);
  runner::RunReport report = exec.run(jobs);

  for (const runner::JobResult& r : report.results)
    if (!r.ok)
      std::fprintf(stderr, "  WARNING: job %s failed: %s\n", r.key.c_str(),
                   r.error.c_str());

  struct MetricDef {
    const char* name;
    const char* fmt;
    double (*get)(const exp::WindowMetrics&);
  };
  const MetricDef metrics[] = {
      {"avg queue (pkts)", "%.1f",
       [](const exp::WindowMetrics& m) { return m.avg_queue_pkts; }},
      {"drop rate", "%.2e",
       [](const exp::WindowMetrics& m) { return m.drop_rate; }},
      {"utilization (%)", "%.1f",
       [](const exp::WindowMetrics& m) { return 100.0 * m.utilization; }},
      {"jain fairness", "%.3f",
       [](const exp::WindowMetrics& m) { return m.jain; }},
  };

  for (const auto& md : metrics) {
    std::printf("-- %s --\n", md.name);
    std::vector<std::string> headers{spec.x_name};
    for (auto s : spec.schemes) headers.emplace_back(exp::to_string(s));
    exp::Table t(headers);
    for (std::size_t i = 0; i < nx; ++i) {
      std::vector<std::string> row{spec.x_labels[i]};
      for (std::size_t j = 0; j < ns; ++j)
        row.push_back(
            exp::fmt(md.get(report.results[i * ns + j].metrics), md.fmt));
      t.row(std::move(row));
    }
    t.print();
    std::printf("\n");
  }
  return report;
}

}  // namespace pert::bench
