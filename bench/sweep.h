// Dumbbell parameter-sweep runner shared by the Figure 6-9 and 14 benches:
// every (x, scheme) cell is one self-contained runner::Job; the grid executes
// on the experiment runner (serial with --jobs 1, parallel otherwise) and the
// collected results print one table per metric, matching the four panels the
// paper plots (avg queue, drop rate, utilization, Jain).
//
// Each cell's RNG seed is derived from the bench's base seed and the cell key
// (runner::derive_seed), so the grid is bit-identical for any --jobs value.
#pragma once

#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <functional>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "dist/worker.h"
#include "exp/dumbbell.h"
#include "exp/table.h"
#include "runner/runner.h"
#include "runner/seed.h"

namespace pert::bench {

struct SweepSpec {
  /// Bench id: prefixes job keys and names the RunReport (JSON export).
  std::string name = "dumbbell_sweep";
  std::string x_name;
  std::vector<double> xs;
  std::vector<std::string> x_labels;  ///< same length as xs
  std::vector<exp::SchemeSpec> schemes;
  /// Builds the scenario for one cell.
  std::function<exp::DumbbellConfig(double x, const exp::SchemeSpec& s)>
      config;
  /// Measurement window per x: {warmup, measure} seconds.
  std::function<std::pair<double, double>(double x)> window;
};

/// Maps a job key ("fig08_num_flows/flows=10/PERT") to a file name safe for
/// any filesystem: every character outside [A-Za-z0-9._-] becomes '_'.
inline std::string cell_trace_path(const std::string& dir,
                                   const std::string& key) {
  std::string name = key;
  for (char& c : name)
    if (!(std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '-' ||
          c == '.' || c == '_'))
      c = '_';
  return dir + "/" + name + ".json";
}

/// Executes the sweep grid on the experiment runner and prints the metric
/// tables. Returns the full report (per-cell metrics, seeds, event counts,
/// wall times) for JSON export. When `trace_dir` is non-empty, event tracing
/// is enabled for every cell and each cell writes a Chrome trace_event JSON
/// named after its (sanitized) job key into that directory.
///
/// With a sharded `ropts` only the shard's cells run (absent cells print as
/// "-"); with `worker_address` set the grid is served to that coordinator
/// instead of running locally and the returned report is a stub (the
/// coordinator owns the real one).
inline runner::RunReport run_dumbbell_sweep(
    const SweepSpec& spec, runner::RunnerOptions ropts = {},
    const std::string& trace_dir = {}, const std::string& worker_address = {}) {
  const std::size_t nx = spec.xs.size(), ns = spec.schemes.size();
  if (!trace_dir.empty()) std::filesystem::create_directories(trace_dir);

  // Materialize every cell's config and window up front, on this thread:
  // job bodies must not share the spec's callbacks.
  std::vector<runner::Job> jobs;
  jobs.reserve(nx * ns);
  for (std::size_t i = 0; i < nx; ++i) {
    for (std::size_t j = 0; j < ns; ++j) {
      const auto [warmup, measure] = spec.window(spec.xs[i]);
      exp::DumbbellConfig cfg = spec.config(spec.xs[i], spec.schemes[j]);
      runner::Job job;
      job.key = spec.name + "/" + spec.x_name + "=" + spec.x_labels[i] + "/" +
                exp::to_string(spec.schemes[j]);
      job.seed = runner::derive_seed(cfg.seed, job.key);
      job.tags = {{"x", spec.x_labels[i]},
                  {"scheme", exp::to_string(spec.schemes[j])}};
      cfg.seed = job.seed;
      std::string trace_path;
      if (!trace_dir.empty()) {
        cfg.obs.trace.enabled = true;
        trace_path = cell_trace_path(trace_dir, job.key);
      }
      job.run = [cfg, warmup = warmup, measure = measure,
                 trace_path](const runner::Job& cell) mutable {
        // Cooperative timeout: the scenario watchdog polls the runner's
        // cancel flag (no effect on results; the flag consumes no RNG).
        cfg.watchdog.cancel = cell.cancel.flag();
        exp::Dumbbell d(cfg);
        runner::JobOutput out;
        out.metrics = d.measure_window(warmup, measure);
        out.events = d.network().total_dispatched();
        out.registry = d.obs().registry();
        if (!trace_path.empty()) {
          std::ofstream f(trace_path);
          if (!f)
            throw std::runtime_error("cannot open trace file " + trace_path);
          d.obs().tracer().write_chrome_trace(f);
        }
        return out;
      };
      jobs.push_back(std::move(job));
    }
  }

  if (!worker_address.empty()) {
    dist::WorkerOptions wopts;
    wopts.label = spec.name;
    const dist::WorkerSummary ws =
        dist::run_worker(worker_address, spec.name, jobs, wopts);
    if (!ws.gave_up) {
      std::fprintf(stderr, "  worker served %llu cell(s) to %s\n",
                   static_cast<unsigned long long>(ws.completed),
                   worker_address.c_str());
      runner::RunReport stub;
      stub.name = spec.name;
      stub.status = "ok";
      stub.grid_cells = jobs.size();
      return stub;
    }
    // Graceful degradation: the coordinator stayed unreachable past the
    // reconnect budget, so run the grid standalone — every cell is a pure
    // function of its seed, so the local report is the same one the
    // coordinator would have assembled.
    std::fprintf(stderr,
                 "  worker gave up on %s; falling back to standalone run\n",
                 worker_address.c_str());
  }

  ropts.name = spec.name;
  runner::ExperimentRunner exec(ropts);
  runner::RunReport report = exec.run(jobs);

  for (const runner::JobResult& r : report.results)
    if (!r.ok)
      std::fprintf(stderr, "  WARNING: job %s failed: %s\n", r.key.c_str(),
                   r.error.c_str());

  // A sharded run's results cover only its slice of the grid; index the
  // tables by global cell, printing "-" for cells other shards own.
  std::vector<const runner::JobResult*> by_cell(nx * ns, nullptr);
  for (const runner::JobResult& r : report.results)
    if (r.cell < by_cell.size()) by_cell[r.cell] = &r;

  struct MetricDef {
    const char* name;
    const char* fmt;
    double (*get)(const exp::WindowMetrics&);
  };
  const MetricDef metrics[] = {
      {"avg queue (pkts)", "%.1f",
       [](const exp::WindowMetrics& m) { return m.avg_queue_pkts; }},
      {"drop rate", "%.2e",
       [](const exp::WindowMetrics& m) { return m.drop_rate; }},
      {"utilization (%)", "%.1f",
       [](const exp::WindowMetrics& m) { return 100.0 * m.utilization; }},
      {"jain fairness", "%.3f",
       [](const exp::WindowMetrics& m) { return m.jain; }},
  };

  for (const auto& md : metrics) {
    std::printf("-- %s --\n", md.name);
    std::vector<std::string> headers{spec.x_name};
    for (const auto& s : spec.schemes)
      headers.emplace_back(exp::to_string(s));
    exp::Table t(headers);
    for (std::size_t i = 0; i < nx; ++i) {
      std::vector<std::string> row{spec.x_labels[i]};
      for (std::size_t j = 0; j < ns; ++j) {
        const runner::JobResult* r = by_cell[i * ns + j];
        row.push_back(r != nullptr ? exp::fmt(md.get(r->metrics), md.fmt)
                                   : std::string("-"));
      }
      t.row(std::move(row));
    }
    t.print();
    std::printf("\n");
  }
  return report;
}

}  // namespace pert::bench
