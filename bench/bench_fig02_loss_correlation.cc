// Figure 2: fraction of transitions from the "high RTT" state into the
// "loss" state when losses are measured within the tagged flow vs at the
// bottleneck queue, for the six traffic cases.
//
// Expected shape: the queue-level fraction is much higher than the
// flow-level fraction in every case — delay predicts *bottleneck* losses
// well even when the observed flow itself is not the one dropped.
#include "predict_common.h"

#include "exp/table.h"

int main(int argc, char** argv) {
  using namespace pert;
  const bench::Opts opt = bench::Opts::parse(argc, argv);
  opt.banner("Figure 2: high-RTT -> loss transition fraction, flow vs queue",
             "queue-level correlation >> flow-level correlation, all cases");

  exp::Table t({"case", "LT flows", "web", "flow-level", "queue-level"});
  for (const auto& c : bench::paper_cases(opt.full)) {
    std::fprintf(stderr, "  tracing %s ...\n", c.name.c_str());
    const predictors::FlowTrace trace = bench::record_case(c, opt.full);

    predictors::ThresholdPredictor p(bench::kRttThreshold);
    predictors::ClassifyOptions fo;
    fo.queue_level_losses = false;
    predictors::ClassifyOptions qo;
    qo.queue_level_losses = true;
    const auto cf = predictors::classify(trace, p, fo);
    const auto cq = predictors::classify(trace, p, qo);
    t.row({c.name, std::to_string(c.long_term), std::to_string(c.web),
           exp::fmt(cf.efficiency(), "%.3f"), exp::fmt(cq.efficiency(), "%.3f")});
  }
  t.print();
  return 0;
}
