// Figure 12: dynamic protocol behavior. Cohorts of 25 flows join at fixed
// intervals (severe contention), then leave one cohort at a time (sudden
// bandwidth availability). Prints the aggregate throughput time series of
// each cohort.
//
// Expected shape: after each arrival/departure the per-cohort aggregates
// converge quickly toward the fair split (PERT responds fast); Vegas shows
// persistent unfairness between cohorts.
#include <string>
#include <vector>

#include "common.h"
#include "exp/dumbbell.h"
#include "exp/table.h"

int main(int argc, char** argv) {
  using namespace pert;
  const bench::Opts opt = bench::Opts::parse(argc, argv);
  opt.banner("Figure 12: response to sudden changes in responsive traffic",
             "cohort aggregates re-converge quickly after each join/leave "
             "for PERT; Vegas cohorts stay unfair");

  const std::int32_t kCohort = opt.full ? 25 : 10;
  const double interval = opt.full ? 100.0 : 40.0;
  const double bin = interval / 10.0;
  const double bw = opt.full ? 150e6 : 50e6;

  for (exp::Scheme s : {exp::Scheme::kPert, exp::Scheme::kVegas,
                        exp::Scheme::kSackDroptail}) {
    std::fprintf(stderr, "  running %s ...\n",
                 std::string(exp::to_string(s)).c_str());
    exp::DumbbellConfig cfg;
    cfg.scheme = s;
    cfg.bottleneck_bps = bw;
    cfg.rtt = 0.060;
    cfg.num_fwd_flows = kCohort;  // cohort 1 at t=0
    cfg.start_window = 1.0;
    cfg.seed = 12;
    exp::Dumbbell d(cfg);

    // Cohorts 2..4 join at interval boundaries; then leave in join order.
    std::vector<std::vector<std::int32_t>> cohorts(4);
    for (std::int32_t i = 0; i < kCohort; ++i) cohorts[0].push_back(i);
    struct Event {
      double t;
      int join_cohort;   // -1 = none
      int leave_cohort;  // -1 = none
    };
    std::vector<Event> events;
    for (int c = 1; c <= 3; ++c)
      events.push_back({c * interval, c, -1});
    for (int c = 0; c <= 2; ++c)
      events.push_back({(4 + c) * interval, -1, c});
    const double total = 7 * interval;

    std::printf("scheme: %s (cohort size %d, %gs intervals)\n",
                std::string(exp::to_string(s)).c_str(), kCohort, interval);
    exp::Table t({"time (s)", "cohort1 (Mbps)", "cohort2 (Mbps)",
                  "cohort3 (Mbps)", "cohort4 (Mbps)"});

    std::size_t next_event = 0;
    std::vector<std::int64_t> last_acked(4 * kCohort, 0);
    auto cohort_tput = [&](int c, double dt) {
      double bits = 0;
      for (std::int32_t i : cohorts[c]) {
        const std::int64_t a = d.flow_acked(i);
        bits += static_cast<double>(a - last_acked[i]) * 8 *
                cfg.tcp.seg_payload;
        last_acked[i] = a;
      }
      return bits / dt / 1e6;
    };

    for (double now = bin; now <= total + 1e-9; now += bin) {
      while (next_event < events.size() && events[next_event].t <= now - bin + 1e-9) {
        const Event& e = events[next_event++];
        if (e.join_cohort >= 0) {
          const auto idx = d.add_flows(kCohort, e.t);
          cohorts[e.join_cohort] = idx;
          last_acked.resize(d.num_fwd(), 0);
        }
        if (e.leave_cohort >= 0)
          for (std::int32_t i : cohorts[e.leave_cohort]) d.stop_flow(i);
      }
      d.network().run_until(now);
      std::vector<std::string> row{exp::fmt(now, "%.0f")};
      for (int c = 0; c < 4; ++c)
        row.push_back(exp::fmt(cohort_tput(c, bin), "%.1f"));
      t.row(std::move(row));
    }
    t.print();
    std::printf("\n");
  }
  return 0;
}
