// Table 1: flows with different RTTs (12, 24, ..., 120 ms) sharing a
// 150 Mbps bottleneck with 100 background web sessions: normalized average
// queue (Q), drop rate (p), utilization (U), Jain fairness (F).
//
// Expected shape: PERT and Vegas reduce TCP's RTT-unfairness (F well above
// SACK's); PERT's queue and drop rate below both SACK variants.
#include <vector>

#include "common.h"
#include "exp/dumbbell.h"
#include "exp/table.h"

int main(int argc, char** argv) {
  using namespace pert;
  const bench::Opts opt = bench::Opts::parse(argc, argv);
  opt.banner("Table 1: different RTTs sharing the bottleneck",
             "paper: PERT Q=0.28 p~4e-6 U=93.8 F=0.86 | Sack/DT F=0.44 | "
             "Sack/RED F=0.51 | Vegas Q=0.07 U~100 F=0.98");

  exp::Table t({"scheme", "Q (norm)", "p", "U (%)", "F"});
  for (exp::Scheme s :
       {exp::Scheme::kPert, exp::Scheme::kSackDroptail,
        exp::Scheme::kSackRedEcn, exp::Scheme::kVegas}) {
    std::fprintf(stderr, "  running %s ...\n",
                 std::string(exp::to_string(s)).c_str());
    exp::DumbbellConfig cfg;
    cfg.scheme = s;
    cfg.bottleneck_bps = opt.full ? 150e6 : 100e6;
    cfg.num_fwd_flows = 10;
    cfg.flow_rtts.clear();
    for (int i = 1; i <= 10; ++i) cfg.flow_rtts.push_back(0.012 * i);
    cfg.rtt = 0.060;  // web sessions + buffer sizing reference
    cfg.num_web_sessions = opt.full ? 100 : 50;
    cfg.start_window = opt.full ? 50.0 : 10.0;
    cfg.seed = 1;
    exp::Dumbbell d(cfg);
    const auto m = opt.full ? d.measure_window(100.0, 200.0) : d.measure_window(25.0, 60.0);
    t.row({std::string(exp::to_string(s)), exp::fmt(m.norm_queue, "%.3f"),
           exp::fmt(m.drop_rate, "%.2e"),
           exp::fmt(100 * m.utilization, "%.2f"), exp::fmt(m.jain, "%.3f")});
  }
  t.print();
  return 0;
}
