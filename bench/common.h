// Shared bench-harness helpers: flag handling and run-length scaling.
//
// Every reproduction bench runs a reduced (shape-preserving) grid by default
// so the whole suite finishes in minutes; pass --full for paper-scale
// parameters (Section "Scale substitution" in DESIGN.md). The sweep benches
// additionally accept
//   --jobs N     run N simulation cells in parallel (0 = all hardware cores;
//                results are bit-identical for any N — see docs/runner.md)
//   --json PATH  export the per-cell RunReport (metrics, seeds, event counts,
//                wall times) as JSON
//   --smoke      tiny grid for CI determinism checks (seconds, not minutes)
//   --journal PATH  journal every completed cell to PATH (crash-safe; see
//                docs/runner.md "Crash safety & resume")
//   --resume     recover completed cells from the --journal file and run
//                only what is missing
//   --trace-dir DIR  write one Chrome trace_event JSON per cell into DIR
//                (see docs/observability.md)
//   --shard K/N  run only the grid cells whose index i satisfies
//                i % N == K (0-based); the union of all N shards is
//                byte-identical to the unsharded run (docs/runner.md
//                "Distributed sweeps")
//   --worker HOST:PORT  serve this bench's grid as a distributed worker:
//                fetch cell leases from a sweep_coordinator instead of
//                running the grid locally
//
// Flags are parsed by exp::cli::OptionSet, so --help lists them and unknown
// flags are an error (they used to be silently ignored).
//   --list-schemes  print the registered CC modules and queue disciplines
//                (the vocabulary of --schemes) and exit
//   --schemes LIST  comma list of scheme specs overriding the bench's
//                built-in scheme set, e.g. --schemes pert,cubic/codel
#pragma once

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <vector>

#include "dist/shard.h"
#include "exp/option_set.h"
#include "exp/scheme.h"
#include "net/qdisc_registry.h"
#include "runner/report.h"
#include "runner/runner.h"
#include "tcp/cc_registry.h"

namespace pert::bench {

/// --list-schemes: both registries, one line per module, then exit.
inline void print_scheme_registries() {
  exp::ensure_scheme_modules();
  std::printf("congestion-control modules:\n");
  for (const tcp::CcInfo& m : tcp::CcRegistry::instance().list())
    std::printf("  %-10s %s%s\n", m.name.c_str(), m.summary.c_str(),
                m.wants_ecn ? " [wants ecn]" : "");
  std::printf("queue disciplines:\n");
  for (const net::QdiscInfo& m : net::QdiscRegistry::instance().list())
    std::printf("  %-10s %s%s\n", m.name.c_str(), m.summary.c_str(),
                m.marks_ecn ? " [marks ecn]" : "");
  std::printf(
      "scheme spec: a legacy paper name (pert, sack-red, ...) or cc/qdisc\n"
      "with an optional +ecn/-ecn suffix, e.g. cubic/codel, dctcp/red+ecn\n");
}

struct Opts {
  bool full = false;
  bool smoke = false;
  unsigned jobs = 1;      ///< worker threads; 0 = hardware concurrency
  /// Parallel-engine workers *inside* each simulation (0 = classic
  /// single-scheduler path). Orthogonal to --jobs: --jobs parallelizes
  /// across grid cells, --sim-threads parallelizes one simulation. Results
  /// are byte-identical for every value (tools/check_pdes.sh pins this).
  unsigned sim_threads = 0;
  std::string json;       ///< when non-empty, write the RunReport here
  std::string journal;    ///< when non-empty, journal every completed cell
  bool resume = false;    ///< recover completed cells from the journal
  std::string trace_dir;  ///< when non-empty, per-cell event traces go here
  dist::ShardSpec shard;  ///< --shard K/N grid slice ({0,1} = whole grid)
  std::string worker;     ///< --worker HOST:PORT coordinator address
  /// --schemes comma list (raw); see schemes_or(). Empty = bench default.
  std::string schemes_arg;

  static Opts parse(int argc, char** argv) {
    Opts o;
    bool list_schemes = false;
    std::string shard_arg;
    exp::cli::OptionSet opts(argv != nullptr && argc > 0 ? argv[0] : "bench");
    opts.flag("--full", &o.full, "paper-scale grid (default: reduced)")
        .flag("--smoke", &o.smoke, "tiny grid for CI determinism checks")
        .opt("--jobs", &o.jobs, "parallel simulation cells (0 = all cores)")
        .opt("--sim-threads", &o.sim_threads,
             "parallel engine workers per simulation (0 = classic "
             "single-scheduler path; results identical for any value)")
        .opt("--json", &o.json, "export the per-cell RunReport as JSON",
             "PATH")
        .opt("--journal", &o.journal, "crash-safe journal for --resume",
             "PATH")
        .flag("--resume", &o.resume, "recover completed cells from --journal")
        .opt("--trace-dir", &o.trace_dir,
             "write one Chrome trace_event JSON per cell into DIR", "DIR")
        .opt("--shard", &shard_arg,
             "run only grid cells with index % N == K (0-based)", "K/N")
        .opt("--worker", &o.worker,
             "run as a distributed worker against this coordinator",
             "HOST:PORT")
        .opt("--schemes", &o.schemes_arg,
             "comma list of scheme specs overriding the bench's scheme set",
             "LIST")
        .flag("--list-schemes", &list_schemes,
              "print registered CC modules and queue disciplines, then exit");
    switch (opts.parse(argc, argv)) {
      case exp::cli::OptionSet::Result::kOk: break;
      case exp::cli::OptionSet::Result::kHelp: std::exit(0);
      case exp::cli::OptionSet::Result::kError: std::exit(2);
    }
    if (list_schemes) {
      print_scheme_registries();
      std::exit(0);
    }
    if (o.resume && o.journal.empty()) {
      std::fprintf(stderr, "error: --resume requires --journal PATH\n");
      std::exit(2);
    }
    if (!shard_arg.empty()) {
      try {
        o.shard = dist::parse_shard(shard_arg);
      } catch (const std::exception& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        std::exit(2);
      }
    }
    if (!o.worker.empty() && (o.shard.active() || o.resume)) {
      std::fprintf(stderr,
                   "error: --worker is exclusive with --shard/--resume (the "
                   "coordinator owns cell assignment and the journal)\n");
      std::exit(2);
    }
    return o;
  }

  void banner(const char* what, const char* paper_expectation) const {
    std::printf("=== %s ===\n", what);
    std::printf("mode: %s\n",
                smoke ? "SMOKE (tiny CI grid; --full for paper scale)"
                : full ? "FULL (paper-scale)"
                       : "default (reduced grid; --full for paper scale)");
    std::printf("paper shape: %s\n\n", paper_expectation);
  }

  /// The bench's scheme set: `fallback` unless --schemes was given, in which
  /// case the comma list is parsed (legacy names and cc/qdisc specs mix
  /// freely). Parse errors are usage errors: message + exit(2).
  std::vector<exp::SchemeSpec> schemes_or(
      std::vector<exp::SchemeSpec> fallback) const {
    if (schemes_arg.empty()) return fallback;
    std::vector<exp::SchemeSpec> out;
    std::size_t pos = 0;
    const std::string& s = schemes_arg;
    try {
      while (pos <= s.size()) {
        const std::size_t comma = s.find(',', pos);
        const std::size_t end = comma == std::string::npos ? s.size() : comma;
        out.push_back(exp::parse_scheme_spec(
            std::string_view(s).substr(pos, end - pos)));
        if (comma == std::string::npos) break;
        pos = comma + 1;
      }
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      std::exit(2);
    }
    return out;
  }

  /// Runner options carrying --jobs / --journal / --resume / --shard for
  /// this bench's batch.
  runner::RunnerOptions runner() const {
    runner::RunnerOptions r;
    r.threads = jobs;
    r.journal_path = journal;
    r.resume = resume;
    r.shard = shard;
    return r;
  }

  /// Writes the report when --json was given. Call once per bench.
  void export_report(const runner::RunReport& report) const {
    if (json.empty()) return;
    runner::write_report(report, json);
    std::fprintf(stderr, "  report written to %s (%zu jobs, %.2fx speedup)\n",
                 json.c_str(), report.results.size(), report.speedup());
  }
};

}  // namespace pert::bench
