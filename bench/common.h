// Shared bench-harness helpers: --full flag handling and run-length scaling.
//
// Every reproduction bench runs a reduced (shape-preserving) grid by default
// so the whole suite finishes in minutes; pass --full for paper-scale
// parameters (Section "Scale substitution" in DESIGN.md).
#pragma once

#include <cstdio>
#include <cstring>
#include <string>

namespace pert::bench {

struct Opts {
  bool full = false;

  static Opts parse(int argc, char** argv) {
    Opts o;
    for (int i = 1; i < argc; ++i)
      if (std::strcmp(argv[i], "--full") == 0) o.full = true;
    return o;
  }

  void banner(const char* what, const char* paper_expectation) const {
    std::printf("=== %s ===\n", what);
    std::printf("mode: %s\n", full ? "FULL (paper-scale)" : "default (reduced grid; --full for paper scale)");
    std::printf("paper shape: %s\n\n", paper_expectation);
  }
};

}  // namespace pert::bench
