// Shared bench-harness helpers: flag handling and run-length scaling.
//
// Every reproduction bench runs a reduced (shape-preserving) grid by default
// so the whole suite finishes in minutes; pass --full for paper-scale
// parameters (Section "Scale substitution" in DESIGN.md). The sweep benches
// additionally accept
//   --jobs N     run N simulation cells in parallel (0 = all hardware cores;
//                results are bit-identical for any N — see docs/runner.md)
//   --json PATH  export the per-cell RunReport (metrics, seeds, event counts,
//                wall times) as JSON
//   --smoke      tiny grid for CI determinism checks (seconds, not minutes)
//   --journal PATH  journal every completed cell to PATH (crash-safe; see
//                docs/runner.md "Crash safety & resume")
//   --resume     recover completed cells from the --journal file and run
//                only what is missing
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "runner/report.h"
#include "runner/runner.h"

namespace pert::bench {

struct Opts {
  bool full = false;
  bool smoke = false;
  unsigned jobs = 1;    ///< worker threads; 0 = hardware concurrency
  std::string json;     ///< when non-empty, write the RunReport here
  std::string journal;  ///< when non-empty, journal every completed cell
  bool resume = false;  ///< recover completed cells from the journal

  static unsigned parse_jobs(const char* s) {
    char* end = nullptr;
    unsigned long v = std::strtoul(s, &end, 10);
    if (end == s || *end != '\0') {
      std::fprintf(stderr, "error: --jobs expects a number, got: %s\n", s);
      std::exit(2);
    }
    return static_cast<unsigned>(v);
  }

  static Opts parse(int argc, char** argv) {
    Opts o;
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--full") == 0) {
        o.full = true;
      } else if (std::strcmp(argv[i], "--smoke") == 0) {
        o.smoke = true;
      } else if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
        o.jobs = parse_jobs(argv[++i]);
      } else if (std::strncmp(argv[i], "--jobs=", 7) == 0) {
        o.jobs = parse_jobs(argv[i] + 7);
      } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
        o.json = argv[++i];
      } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
        o.json = argv[i] + 7;
      } else if (std::strcmp(argv[i], "--journal") == 0 && i + 1 < argc) {
        o.journal = argv[++i];
      } else if (std::strncmp(argv[i], "--journal=", 10) == 0) {
        o.journal = argv[i] + 10;
      } else if (std::strcmp(argv[i], "--resume") == 0) {
        o.resume = true;
      }
    }
    if (o.resume && o.journal.empty()) {
      std::fprintf(stderr, "error: --resume requires --journal PATH\n");
      std::exit(2);
    }
    return o;
  }

  void banner(const char* what, const char* paper_expectation) const {
    std::printf("=== %s ===\n", what);
    std::printf("mode: %s\n",
                smoke ? "SMOKE (tiny CI grid; --full for paper scale)"
                : full ? "FULL (paper-scale)"
                       : "default (reduced grid; --full for paper scale)");
    std::printf("paper shape: %s\n\n", paper_expectation);
  }

  /// Runner options carrying --jobs / --journal / --resume for this
  /// bench's batch.
  runner::RunnerOptions runner() const {
    runner::RunnerOptions r;
    r.threads = jobs;
    r.journal_path = journal;
    r.resume = resume;
    return r;
  }

  /// Writes the report when --json was given. Call once per bench.
  void export_report(const runner::RunReport& report) const {
    if (json.empty()) return;
    runner::write_report(report, json);
    std::fprintf(stderr, "  report written to %s (%zu jobs, %.2fx speedup)\n",
                 json.c_str(), report.results.size(), report.speedup());
  }
};

}  // namespace pert::bench
