// Shared bench-harness helpers: flag handling and run-length scaling.
//
// Every reproduction bench runs a reduced (shape-preserving) grid by default
// so the whole suite finishes in minutes; pass --full for paper-scale
// parameters (Section "Scale substitution" in DESIGN.md). The sweep benches
// additionally accept
//   --jobs N     run N simulation cells in parallel (0 = all hardware cores;
//                results are bit-identical for any N — see docs/runner.md)
//   --json PATH  export the per-cell RunReport (metrics, seeds, event counts,
//                wall times) as JSON
//   --smoke      tiny grid for CI determinism checks (seconds, not minutes)
//   --journal PATH  journal every completed cell to PATH (crash-safe; see
//                docs/runner.md "Crash safety & resume")
//   --resume     recover completed cells from the --journal file and run
//                only what is missing
//   --trace-dir DIR  write one Chrome trace_event JSON per cell into DIR
//                (see docs/observability.md)
//   --shard K/N  run only the grid cells whose index i satisfies
//                i % N == K (0-based); the union of all N shards is
//                byte-identical to the unsharded run (docs/runner.md
//                "Distributed sweeps")
//   --worker HOST:PORT  serve this bench's grid as a distributed worker:
//                fetch cell leases from a sweep_coordinator instead of
//                running the grid locally
//
// Flags are parsed by exp::cli::OptionSet, so --help lists them and unknown
// flags are an error (they used to be silently ignored).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

#include "dist/shard.h"
#include "exp/option_set.h"
#include "runner/report.h"
#include "runner/runner.h"

namespace pert::bench {

struct Opts {
  bool full = false;
  bool smoke = false;
  unsigned jobs = 1;      ///< worker threads; 0 = hardware concurrency
  /// Parallel-engine workers *inside* each simulation (0 = classic
  /// single-scheduler path). Orthogonal to --jobs: --jobs parallelizes
  /// across grid cells, --sim-threads parallelizes one simulation. Results
  /// are byte-identical for every value (tools/check_pdes.sh pins this).
  unsigned sim_threads = 0;
  std::string json;       ///< when non-empty, write the RunReport here
  std::string journal;    ///< when non-empty, journal every completed cell
  bool resume = false;    ///< recover completed cells from the journal
  std::string trace_dir;  ///< when non-empty, per-cell event traces go here
  dist::ShardSpec shard;  ///< --shard K/N grid slice ({0,1} = whole grid)
  std::string worker;     ///< --worker HOST:PORT coordinator address

  static Opts parse(int argc, char** argv) {
    Opts o;
    std::string shard_arg;
    exp::cli::OptionSet opts(argv != nullptr && argc > 0 ? argv[0] : "bench");
    opts.flag("--full", &o.full, "paper-scale grid (default: reduced)")
        .flag("--smoke", &o.smoke, "tiny grid for CI determinism checks")
        .opt("--jobs", &o.jobs, "parallel simulation cells (0 = all cores)")
        .opt("--sim-threads", &o.sim_threads,
             "parallel engine workers per simulation (0 = classic "
             "single-scheduler path; results identical for any value)")
        .opt("--json", &o.json, "export the per-cell RunReport as JSON",
             "PATH")
        .opt("--journal", &o.journal, "crash-safe journal for --resume",
             "PATH")
        .flag("--resume", &o.resume, "recover completed cells from --journal")
        .opt("--trace-dir", &o.trace_dir,
             "write one Chrome trace_event JSON per cell into DIR", "DIR")
        .opt("--shard", &shard_arg,
             "run only grid cells with index % N == K (0-based)", "K/N")
        .opt("--worker", &o.worker,
             "run as a distributed worker against this coordinator",
             "HOST:PORT");
    switch (opts.parse(argc, argv)) {
      case exp::cli::OptionSet::Result::kOk: break;
      case exp::cli::OptionSet::Result::kHelp: std::exit(0);
      case exp::cli::OptionSet::Result::kError: std::exit(2);
    }
    if (o.resume && o.journal.empty()) {
      std::fprintf(stderr, "error: --resume requires --journal PATH\n");
      std::exit(2);
    }
    if (!shard_arg.empty()) {
      try {
        o.shard = dist::parse_shard(shard_arg);
      } catch (const std::exception& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        std::exit(2);
      }
    }
    if (!o.worker.empty() && (o.shard.active() || o.resume)) {
      std::fprintf(stderr,
                   "error: --worker is exclusive with --shard/--resume (the "
                   "coordinator owns cell assignment and the journal)\n");
      std::exit(2);
    }
    return o;
  }

  void banner(const char* what, const char* paper_expectation) const {
    std::printf("=== %s ===\n", what);
    std::printf("mode: %s\n",
                smoke ? "SMOKE (tiny CI grid; --full for paper scale)"
                : full ? "FULL (paper-scale)"
                       : "default (reduced grid; --full for paper scale)");
    std::printf("paper shape: %s\n\n", paper_expectation);
  }

  /// Runner options carrying --jobs / --journal / --resume / --shard for
  /// this bench's batch.
  runner::RunnerOptions runner() const {
    runner::RunnerOptions r;
    r.threads = jobs;
    r.journal_path = journal;
    r.resume = resume;
    r.shard = shard;
    return r;
  }

  /// Writes the report when --json was given. Call once per bench.
  void export_report(const runner::RunReport& report) const {
    if (json.empty()) return;
    runner::write_report(report, json);
    std::fprintf(stderr, "  report written to %s (%zu jobs, %.2fx speedup)\n",
                 json.c_str(), report.results.size(), report.speedup());
  }
};

}  // namespace pert::bench
