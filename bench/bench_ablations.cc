// Ablations of the PERT design choices called out in DESIGN.md §4/§5:
//   - early-response decrease factor (eq. (1) trade-off: 0.2 / 0.35 / 0.5),
//   - gentle vs non-gentle emulated curve,
//   - once-per-RTT response limiting on vs off,
//   - srtt history weight (0.875 / 0.99 / 0.995),
//   - co-existence with non-proactive (plain SACK) flows,
//   - sensitivity to reverse-path traffic.
//
// Every ablation cell is independent, so all sections flatten into one job
// batch for the experiment runner (--jobs N runs cells concurrently); the
// section tables print from the collected results in the original order.
#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "common.h"
#include "exp/dumbbell.h"
#include "exp/table.h"
#include "runner/seed.h"

namespace {

using namespace pert;

exp::DumbbellConfig base(bool full) {
  exp::DumbbellConfig cfg;
  cfg.scheme = exp::Scheme::kPert;
  cfg.bottleneck_bps = full ? 150e6 : 50e6;
  cfg.rtt = 0.060;
  cfg.num_fwd_flows = 20;
  cfg.start_window = 5.0;
  cfg.seed = 99;
  return cfg;
}

struct Section {
  std::string title;
  std::string label_header;
  std::vector<std::string> labels;
  std::vector<std::size_t> cells;  ///< indices into the flat job vector
};

}  // namespace

int main(int argc, char** argv) {
  const bench::Opts opt = bench::Opts::parse(argc, argv);
  opt.banner("PERT design ablations",
             "beta trades utilization vs queue; non-gentle over-responds; "
             "unlimited response collapses utilization; heavier srtt weight "
             "lowers FP-driven responses");

  const double warmup = opt.full ? 50.0 : 20.0;
  const double measure = opt.full ? 100.0 : 40.0;

  std::vector<runner::Job> jobs;
  std::vector<Section> sections;
  // Queues one ablation cell: derives its seed from the base seed and the
  // section/label key, and records it under the current section.
  auto add_cell = [&](const std::string& label, exp::DumbbellConfig cfg) {
    Section& sec = sections.back();
    runner::Job job;
    job.key = "ablations/" + sec.title + "/" + label;
    job.seed = runner::derive_seed(cfg.seed, job.key);
    job.tags = {{"x", label}, {"scheme", sec.title}};
    cfg.seed = job.seed;
    job.run = [cfg, warmup, measure](const runner::Job&) {
      exp::Dumbbell d(cfg);
      runner::JobOutput out;
      out.metrics = d.measure_window(warmup, measure);
      out.events = d.network().sched().dispatched();
      return out;
    };
    sec.labels.push_back(label);
    sec.cells.push_back(jobs.size());
    jobs.push_back(std::move(job));
  };

  sections.push_back({"early-response decrease factor (paper uses 0.35)",
                      "beta", {}, {}});
  for (double beta : {0.20, 0.35, 0.50}) {
    exp::DumbbellConfig cfg = base(opt.full);
    cfg.pert.early_beta = beta;
    add_cell(exp::fmt(beta, "%.2f"), cfg);
  }

  sections.push_back({"gentle vs non-gentle emulated RED curve",
                      "curve", {}, {}});
  for (bool gentle : {true, false}) {
    exp::DumbbellConfig cfg = base(opt.full);
    cfg.pert.gentle = gentle;
    add_cell(gentle ? "gentle" : "non-gentle", cfg);
  }

  sections.push_back({"once-per-RTT early-response limiting", "limit", {}, {}});
  for (bool limit : {true, false}) {
    exp::DumbbellConfig cfg = base(opt.full);
    cfg.pert.limit_once_per_rtt = limit;
    add_cell(limit ? "once-per-rtt" : "unlimited", cfg);
  }

  sections.push_back({"srtt history weight", "alpha", {}, {}});
  for (double a : {0.875, 0.99, 0.995}) {
    exp::DumbbellConfig cfg = base(opt.full);
    cfg.pert.srtt_alpha = a;
    add_cell(exp::fmt(a, "%.3f"), cfg);
  }

  sections.push_back(
      {"co-existence with non-proactive SACK flows (Section 7)",
       "sack fraction", {}, {}});
  for (double f : {0.0, 0.25, 0.5}) {
    exp::DumbbellConfig cfg = base(opt.full);
    cfg.nonproactive_fraction = f;
    add_cell(exp::fmt(f, "%.2f"), cfg);
  }

  sections.push_back({"reverse-path traffic sensitivity (Section 7)",
                      "signal / reverse flows", {}, {}});
  for (std::int32_t rev : {0, 10, 20}) {
    for (bool owd : {false, true}) {
      exp::DumbbellConfig cfg = base(opt.full);
      cfg.num_rev_flows = rev;
      cfg.pert.use_one_way_delay = owd;
      add_cell(std::string(owd ? "one-way delay / " : "rtt / ") +
                   std::to_string(rev),
               cfg);
    }
  }

  sections.push_back(
      {"adaptive pmax (Section 7 self-configuring extension)",
       "pmax mode", {}, {}});
  for (bool adaptive : {false, true}) {
    exp::DumbbellConfig cfg = base(opt.full);
    cfg.pert.adaptive_pmax = adaptive;
    add_cell(adaptive ? "adaptive" : "fixed 0.05", cfg);
  }

  runner::RunnerOptions ropts = opt.runner();
  ropts.name = "ablations";
  const runner::RunReport report = runner::ExperimentRunner(ropts).run(jobs);

  for (const Section& sec : sections) {
    std::printf("-- %s --\n", sec.title.c_str());
    exp::Table t({sec.label_header, "avg queue (pkts)", "drop rate", "util (%)",
                  "jain", "early responses"});
    for (std::size_t i = 0; i < sec.cells.size(); ++i) {
      const exp::WindowMetrics& m = report.results[sec.cells[i]].metrics;
      t.row({sec.labels[i], exp::fmt(m.avg_queue_pkts, "%.1f"),
             exp::fmt(m.drop_rate, "%.2e"),
             exp::fmt(100 * m.utilization, "%.1f"), exp::fmt(m.jain, "%.3f"),
             std::to_string(m.early_responses)});
    }
    t.print();
    std::printf("\n");
  }
  opt.export_report(report);
  return 0;
}
