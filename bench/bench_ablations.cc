// Ablations of the PERT design choices called out in DESIGN.md §4/§5:
//   - early-response decrease factor (eq. (1) trade-off: 0.2 / 0.35 / 0.5),
//   - gentle vs non-gentle emulated curve,
//   - once-per-RTT response limiting on vs off,
//   - srtt history weight (0.875 / 0.99 / 0.995),
//   - co-existence with non-proactive (plain SACK) flows,
//   - sensitivity to reverse-path traffic.
#include <string>

#include "common.h"
#include "exp/dumbbell.h"
#include "exp/table.h"

namespace {

using namespace pert;

exp::DumbbellConfig base(bool full) {
  exp::DumbbellConfig cfg;
  cfg.scheme = exp::Scheme::kPert;
  cfg.bottleneck_bps = full ? 150e6 : 50e6;
  cfg.rtt = 0.060;
  cfg.num_fwd_flows = 20;
  cfg.start_window = 5.0;
  cfg.seed = 99;
  return cfg;
}

exp::WindowMetrics run(const exp::DumbbellConfig& cfg, bool full) {
  exp::Dumbbell d(cfg);
  return full ? d.run(50.0, 100.0) : d.run(20.0, 40.0);
}

void emit(exp::Table& t, const std::string& label, const exp::WindowMetrics& m) {
  t.row({label, exp::fmt(m.avg_queue_pkts, "%.1f"),
         exp::fmt(m.drop_rate, "%.2e"), exp::fmt(100 * m.utilization, "%.1f"),
         exp::fmt(m.jain, "%.3f"), std::to_string(m.early_responses)});
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Opts opt = bench::Opts::parse(argc, argv);
  opt.banner("PERT design ablations",
             "beta trades utilization vs queue; non-gentle over-responds; "
             "unlimited response collapses utilization; heavier srtt weight "
             "lowers FP-driven responses");

  {
    std::printf("-- early-response decrease factor (paper uses 0.35) --\n");
    exp::Table t({"beta", "avg queue (pkts)", "drop rate", "util (%)", "jain",
                  "early responses"});
    for (double beta : {0.20, 0.35, 0.50}) {
      exp::DumbbellConfig cfg = base(opt.full);
      cfg.pert.early_beta = beta;
      emit(t, exp::fmt(beta, "%.2f"), run(cfg, opt.full));
    }
    t.print();
    std::printf("\n");
  }

  {
    std::printf("-- gentle vs non-gentle emulated RED curve --\n");
    exp::Table t({"curve", "avg queue (pkts)", "drop rate", "util (%)",
                  "jain", "early responses"});
    for (bool gentle : {true, false}) {
      exp::DumbbellConfig cfg = base(opt.full);
      cfg.pert.gentle = gentle;
      emit(t, gentle ? "gentle" : "non-gentle", run(cfg, opt.full));
    }
    t.print();
    std::printf("\n");
  }

  {
    std::printf("-- once-per-RTT early-response limiting --\n");
    exp::Table t({"limit", "avg queue (pkts)", "drop rate", "util (%)",
                  "jain", "early responses"});
    for (bool limit : {true, false}) {
      exp::DumbbellConfig cfg = base(opt.full);
      cfg.pert.limit_once_per_rtt = limit;
      emit(t, limit ? "once-per-rtt" : "unlimited", run(cfg, opt.full));
    }
    t.print();
    std::printf("\n");
  }

  {
    std::printf("-- srtt history weight --\n");
    exp::Table t({"alpha", "avg queue (pkts)", "drop rate", "util (%)",
                  "jain", "early responses"});
    for (double a : {0.875, 0.99, 0.995}) {
      exp::DumbbellConfig cfg = base(opt.full);
      cfg.pert.srtt_alpha = a;
      emit(t, exp::fmt(a, "%.3f"), run(cfg, opt.full));
    }
    t.print();
    std::printf("\n");
  }

  {
    std::printf(
        "-- co-existence with non-proactive SACK flows (Section 7) --\n");
    exp::Table t({"sack fraction", "avg queue (pkts)", "drop rate",
                  "util (%)", "jain", "early responses"});
    for (double f : {0.0, 0.25, 0.5}) {
      exp::DumbbellConfig cfg = base(opt.full);
      cfg.nonproactive_fraction = f;
      emit(t, exp::fmt(f, "%.2f"), run(cfg, opt.full));
    }
    t.print();
    std::printf("\n");
  }

  {
    std::printf("-- reverse-path traffic sensitivity (Section 7) --\n");
    exp::Table t({"signal / reverse flows", "avg queue (pkts)", "drop rate",
                  "util (%)", "jain", "early responses"});
    for (std::int32_t rev : {0, 10, 20}) {
      for (bool owd : {false, true}) {
        exp::DumbbellConfig cfg = base(opt.full);
        cfg.num_rev_flows = rev;
        cfg.pert.use_one_way_delay = owd;
        emit(t,
             std::string(owd ? "one-way delay / " : "rtt / ") +
                 std::to_string(rev),
             run(cfg, opt.full));
      }
    }
    t.print();
    std::printf("\n");
  }

  {
    std::printf("-- adaptive pmax (Section 7 self-configuring extension) --\n");
    exp::Table t({"pmax mode", "avg queue (pkts)", "drop rate", "util (%)",
                  "jain", "early responses"});
    for (bool adaptive : {false, true}) {
      exp::DumbbellConfig cfg = base(opt.full);
      cfg.pert.adaptive_pmax = adaptive;
      emit(t, adaptive ? "adaptive" : "fixed 0.05", run(cfg, opt.full));
    }
    t.print();
    std::printf("\n");
  }
  return 0;
}
