// Figure 3: prediction efficiency, false positives, and false negatives of
// the congestion predictors (losses measured at the bottleneck queue),
// averaged over the six traffic cases. Includes the paper's EWMA-weight
// ablation (7/8 vs 0.99; add 0.995 as an extra point).
//
// Expected shape: Vegas best among the classics; inst-RTT efficient but
// noisy (high FP); MA-750 and EWMA-0.99 both efficient with low FP/FN.
#include <memory>
#include <vector>

#include "exp/table.h"
#include "predict_common.h"
#include "predictors/extra.h"

int main(int argc, char** argv) {
  using namespace pert;
  using namespace pert::predictors;
  const bench::Opts opt = bench::Opts::parse(argc, argv);
  opt.banner("Figure 3: predictor comparison (queue-level losses)",
             "vegas best classic; inst-rtt high FP; ma-750 and ewma-0.99 "
             "high efficiency with low FP/FN");

  struct Entry {
    std::string name;
    std::unique_ptr<Predictor> p;
    TransitionCounts sum;
  };
  std::vector<Entry> entries;
  entries.push_back({"CARD", std::make_unique<CardPredictor>(), {}});
  entries.push_back({"TRI-S", std::make_unique<TrisPredictor>(), {}});
  entries.push_back({"DUAL", std::make_unique<DualPredictor>(), {}});
  entries.push_back({"Vegas", std::make_unique<VegasPredictor>(), {}});
  entries.push_back({"CIM", std::make_unique<CimPredictor>(), {}});
  entries.push_back(
      {"inst-RTT",
       std::make_unique<ThresholdPredictor>(bench::kRttThreshold), {}});
  entries.push_back(
      {"mavg-750",
       std::make_unique<MovingAvgPredictor>(750, bench::kRttThreshold), {}});
  entries.push_back(
      {"ewma-7/8",
       std::make_unique<EwmaPredictor>(0.875, bench::kRttThreshold), {}});
  entries.push_back(
      {"ewma-0.99 (srtt99)",
       std::make_unique<EwmaPredictor>(0.99, bench::kRttThreshold), {}});
  entries.push_back(
      {"ewma-0.995",
       std::make_unique<EwmaPredictor>(0.995, bench::kRttThreshold), {}});
  // Related-work extras (not in the paper's Figure 3): TCP-BFA variance
  // watcher and a Sync-TCP-style delay-trend detector.
  entries.push_back({"tcp-bfa", std::make_unique<BfaPredictor>(), {}});
  entries.push_back({"sync-trend", std::make_unique<TrendPredictor>(), {}});

  for (const auto& c : bench::paper_cases(opt.full)) {
    std::fprintf(stderr, "  tracing %s ...\n", c.name.c_str());
    const FlowTrace trace = bench::record_case(c, opt.full);
    for (auto& e : entries) {
      const auto counts = classify(trace, *e.p, ClassifyOptions{});
      e.sum.n2 += counts.n2;
      e.sum.n4 += counts.n4;
      e.sum.n5 += counts.n5;
    }
  }

  exp::Table t({"predictor", "efficiency", "false positives",
                "false negatives", "n2", "n4", "n5"});
  for (const auto& e : entries)
    t.row({e.name, exp::fmt(e.sum.efficiency(), "%.3f"),
           exp::fmt(e.sum.false_positive_rate(), "%.3f"),
           exp::fmt(e.sum.false_negative_rate(), "%.3f"),
           std::to_string(e.sum.n2), std::to_string(e.sum.n4),
           std::to_string(e.sum.n5)});
  t.print();
  return 0;
}
