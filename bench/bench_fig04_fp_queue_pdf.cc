// Figure 4: probability distribution of the normalized bottleneck queue
// length at the moments srtt_0.99 false positives occur, over the six cases.
//
// Expected shape: the mass concentrates at low normalized queue lengths
// (mostly below 0.5) — uncertainty strikes when the queue is small, which
// is what justifies a RED-like (small response at small delay) curve.
#include <vector>

#include "exp/table.h"
#include "predict_common.h"
#include "stats/stats.h"

int main(int argc, char** argv) {
  using namespace pert;
  using namespace pert::predictors;
  const bench::Opts opt = bench::Opts::parse(argc, argv);
  opt.banner("Figure 4: PDF of normalized queue length at false positives",
             "false-positive mass concentrated below ~0.5 of the buffer");

  exp::Table t({"case", "bin 0-0.1", "0.1-0.2", "0.2-0.3", "0.3-0.4",
                "0.4-0.5", "0.5-0.6", "0.6-0.7", "0.7-0.8", "0.8-0.9",
                "0.9-1.0", "FPs"});
  stats::Histogram all(0.0, 1.0, 10);
  for (const auto& c : bench::paper_cases(opt.full)) {
    std::fprintf(stderr, "  tracing %s ...\n", c.name.c_str());
    const FlowTrace trace = bench::record_case(c, opt.full);
    EwmaPredictor srtt99(0.99, bench::kRttThreshold);
    std::vector<double> fp_q;
    ClassifyOptions o;
    o.fp_qnorm = &fp_q;
    classify(trace, srtt99, o);

    stats::Histogram h(0.0, 1.0, 10);
    for (double q : fp_q) {
      h.add(q);
      all.add(q);
    }
    std::vector<std::string> row{c.name};
    for (std::size_t b = 0; b < 10; ++b)
      row.push_back(exp::fmt(h.pdf(b), "%.2f"));
    row.push_back(std::to_string(fp_q.size()));
    t.row(std::move(row));
  }
  std::vector<std::string> row{"ALL"};
  for (std::size_t b = 0; b < 10; ++b) row.push_back(exp::fmt(all.pdf(b), "%.2f"));
  row.push_back(std::to_string(all.total()));
  t.row(std::move(row));
  t.print();

  double below_half = 0;
  for (std::size_t b = 0; b < 5; ++b) below_half += all.pdf(b);
  std::printf("\nfraction of false positives at qnorm < 0.5: %.2f\n",
              below_half);
  return 0;
}
