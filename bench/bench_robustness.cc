// Robustness sweep: PERT vs SACK/DropTail under non-congestion impairments
// at increasing severity — random loss (Bernoulli), bursty loss
// (Gilbert-Elliott), reordering, delay jitter, payload-size-dependent bit
// errors, and link flaps.
//
// Expected shape: PERT holds its low queue but loses utilization faster than
// SACK as non-congestion loss grows (early response to delay noise +
// ordinary loss response); reordering/jitter perturb PERT's delay predictor
// where SACK only sees dupacks; both collapse equally during an outage.
//
// Every (impairment, severity, scheme) cell is one runner::Job; the grid is
// bit-identical for any --jobs value (each cell's impairment trace is fixed
// by its derived seed), which CI checks with --smoke --jobs 1 vs 4.
#include <string>
#include <vector>

#include "common.h"
#include "sweep.h"

namespace {

struct Cell {
  std::string label;             // e.g. "loss p=0.01"
  pert::net::ImpairmentConfig impair;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace pert;
  const bench::Opts opt = bench::Opts::parse(argc, argv);
  opt.banner("Robustness: impairment models at increasing severity",
             "PERT queue stays low under impairments; utilization falls "
             "faster than SACK as non-congestion loss grows");

  const double warmup = opt.smoke ? 5.0 : (opt.full ? 50.0 : 15.0);
  const double measure = opt.smoke ? 10.0 : (opt.full ? 100.0 : 30.0);

  std::vector<Cell> cells;
  cells.push_back({"none", {}});
  auto add = [&cells](const std::string& label,
                      const net::ImpairmentConfig& ic) {
    cells.push_back({label, ic});
  };

  const std::vector<double> loss_ps =
      opt.smoke ? std::vector<double>{0.01}
                : std::vector<double>{0.001, 0.01, 0.05};
  for (double p : loss_ps) {
    net::ImpairmentConfig ic;
    ic.loss.p = p;
    add("loss p=" + exp::fmt(p, "%g"), ic);
  }
  const std::vector<double> ge_enters =
      opt.smoke ? std::vector<double>{0.005}
                : std::vector<double>{0.001, 0.005, 0.02};
  for (double e : ge_enters) {
    net::ImpairmentConfig ic;
    ic.gilbert.p_enter_bad = e;
    ic.gilbert.p_exit_bad = 0.25;
    add("gilbert enter=" + exp::fmt(e, "%g"), ic);
  }
  const std::vector<double> reorder_ps =
      opt.smoke ? std::vector<double>{0.05}
                : std::vector<double>{0.01, 0.05, 0.2};
  for (double p : reorder_ps) {
    net::ImpairmentConfig ic;
    ic.reorder.p = p;
    ic.reorder.min_delay = 0.002;
    ic.reorder.max_delay = 0.010;
    add("reorder p=" + exp::fmt(p, "%g"), ic);
  }
  const std::vector<double> jitter_ms =
      opt.smoke ? std::vector<double>{5.0}
                : std::vector<double>{2.0, 5.0, 10.0};
  for (double ms : jitter_ms) {
    net::ImpairmentConfig ic;
    ic.jitter.max_delay = ms * 1e-3;
    add("jitter max=" + exp::fmt(ms, "%gms"), ic);
  }
  const std::vector<double> bers =
      opt.smoke ? std::vector<double>{5e-7}
                : std::vector<double>{1e-7, 5e-7, 2e-6};
  for (double ber : bers) {
    net::ImpairmentConfig ic;
    ic.bit_error.ber = ber;
    add("biterror ber=" + exp::fmt(ber, "%g"), ic);
  }
  const std::vector<double> outages =
      opt.smoke ? std::vector<double>{0.5}
                : std::vector<double>{0.2, 0.5, 2.0};
  for (double down : outages) {
    net::ImpairmentConfig ic;
    ic.flap.first_down = warmup + 0.25 * measure;
    ic.flap.down_for = down;
    ic.flap.period = 0.5 * measure;
    ic.flap.count = 2;
    add("flap down=" + exp::fmt(down, "%gs"), ic);
  }

  bench::SweepSpec spec;
  spec.name = "robustness";
  spec.x_name = "impairment";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    spec.xs.push_back(static_cast<double>(i));  // index into `cells`
    spec.x_labels.push_back(cells[i].label);
  }
  spec.schemes = {exp::Scheme::kPert, exp::Scheme::kSackDroptail};
  spec.config = [&](double x, const exp::SchemeSpec& s) {
    exp::DumbbellConfig cfg;
    cfg.scheme = s;
    cfg.bottleneck_bps = opt.smoke ? 20e6 : 50e6;
    cfg.rtt = 0.060;
    cfg.num_fwd_flows = opt.smoke ? 10 : 20;
    cfg.start_window = opt.smoke ? 3.0 : 10.0;
    cfg.seed = 20070827;
    cfg.impair = cells[static_cast<std::size_t>(x)].impair;
    return cfg;
  };
  spec.window = [&](double) { return std::pair{warmup, measure}; };

  const runner::RunReport report =
      bench::run_dumbbell_sweep(spec, opt.runner(), opt.trace_dir, opt.worker);

  // Drop-cause split per cell: shows injected (impairment) losses separated
  // from congestion/overflow drops the AQM itself took.
  std::printf("-- drop causes (congestion/overflow/injected) --\n");
  {
    std::vector<std::string> headers{spec.x_name};
    for (auto s : spec.schemes) headers.emplace_back(exp::to_string(s));
    exp::Table t(headers);
    const std::size_t ns = spec.schemes.size();
    for (std::size_t i = 0; i < spec.xs.size(); ++i) {
      std::vector<std::string> row{spec.x_labels[i]};
      for (std::size_t j = 0; j < ns; ++j) {
        const exp::WindowMetrics& m = report.results[i * ns + j].metrics;
        row.push_back(std::to_string(m.congestion_drops) + "/" +
                      std::to_string(m.overflow_drops) + "/" +
                      std::to_string(m.injected_drops));
      }
      t.row(std::move(row));
    }
    t.print();
    std::printf("\n");
  }

  opt.export_report(report);
  return report.status == "ok" ? 0 : 1;
}
