// Figure 11: multiple bottlenecks (the Figure 10 six-router chain, 150 Mbps
// / 5 ms inter-router links, clouds of 20 hosts, plus cloud1 -> cloud6
// long-haul traffic): per-hop queue, drop rate, utilization, and fairness.
//
// Expected shape: PERT holds low queues and ~zero drops on every hop at
// utilization comparable to SACK/RED-ECN.
//
// Each scheme is one runner::Job (its own Scheduler and chain topology), so
// --jobs 4 runs all four schemes concurrently; per-hop tables print from the
// collected results in scheme order. The per-scheme JSON metrics carry the
// hop averages; the full hop tables stay on stdout.
#include <vector>

#include "common.h"
#include "exp/multi_bottleneck.h"
#include "exp/table.h"
#include "runner/seed.h"

int main(int argc, char** argv) {
  using namespace pert;
  const bench::Opts opt = bench::Opts::parse(argc, argv);
  opt.banner("Figure 11: multiple bottlenecks (6-router chain)",
             "PERT: low queue + zero drops on all hops, util ~ RED-ECN, "
             "fairness maintained");

  const std::vector<exp::Scheme> schemes = {
      exp::Scheme::kPert, exp::Scheme::kSackDroptail, exp::Scheme::kSackRedEcn,
      exp::Scheme::kVegas};

  // Per-hop results come back through a side channel: each job writes only
  // its own pre-sized slot, so no synchronization is needed beyond join.
  std::vector<std::vector<exp::HopMetrics>> hops(schemes.size());

  std::vector<runner::Job> jobs;
  for (std::size_t j = 0; j < schemes.size(); ++j) {
    exp::MultiBottleneckConfig cfg;
    cfg.scheme = schemes[j];
    cfg.num_routers = 6;
    cfg.hosts_per_cloud = opt.smoke ? 4 : opt.full ? 20 : 10;
    cfg.router_link_bps = opt.smoke ? 50e6 : opt.full ? 150e6 : 100e6;
    cfg.router_link_delay = 0.005;
    cfg.access_bps = 1e9;
    cfg.access_delay = 0.005;
    cfg.start_window = opt.smoke ? 2.0 : opt.full ? 50.0 : 10.0;
    cfg.sim_threads = static_cast<std::int32_t>(opt.sim_threads);
    const double warmup = opt.smoke ? 5.0 : opt.full ? 100.0 : 20.0;
    const double measure = opt.smoke ? 10.0 : opt.full ? 200.0 : 40.0;

    runner::Job job;
    job.key = std::string("fig11_multibottleneck/") +
              std::string(exp::to_string(schemes[j]));
    job.seed = runner::derive_seed(11, job.key);
    job.tags = {{"scheme", std::string(exp::to_string(schemes[j]))}};
    cfg.seed = job.seed;
    job.run = [cfg, warmup, measure, &slot = hops[j]](const runner::Job&) {
      exp::MultiBottleneck mb(cfg);
      slot = mb.measure_window(warmup, measure);
      runner::JobOutput out;
      out.events = mb.network().total_dispatched();
      // Report hop averages as the job's scalar metrics (tables below carry
      // the full per-hop detail).
      for (const exp::HopMetrics& h : slot) {
        out.metrics.avg_queue_pkts += h.avg_queue_pkts / slot.size();
        out.metrics.norm_queue += h.norm_queue / slot.size();
        out.metrics.drop_rate += h.drop_rate / slot.size();
        out.metrics.utilization += h.utilization / slot.size();
        out.metrics.jain += h.jain / slot.size();
      }
      out.metrics.duration = measure;
      return out;
    };
    jobs.push_back(std::move(job));
  }

  runner::RunnerOptions ropts = opt.runner();
  ropts.name = "fig11_multibottleneck";
  const runner::RunReport report = runner::ExperimentRunner(ropts).run(jobs);

  for (std::size_t j = 0; j < schemes.size(); ++j) {
    std::printf("scheme: %s\n",
                std::string(exp::to_string(schemes[j])).c_str());
    exp::Table t({"hop", "avg queue (pkts)", "drop rate", "utilization (%)",
                  "jain (hop group)"});
    for (std::size_t h = 0; h < hops[j].size(); ++h)
      t.row({"R" + std::to_string(h + 1) + "-R" + std::to_string(h + 2),
             exp::fmt(hops[j][h].avg_queue_pkts, "%.1f"),
             exp::fmt(hops[j][h].drop_rate, "%.2e"),
             exp::fmt(100 * hops[j][h].utilization, "%.1f"),
             exp::fmt(hops[j][h].jain, "%.3f")});
    t.print();
    std::printf("\n");
  }
  opt.export_report(report);
  return 0;
}
