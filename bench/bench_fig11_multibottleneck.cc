// Figure 11: multiple bottlenecks (the Figure 10 six-router chain, 150 Mbps
// / 5 ms inter-router links, clouds of 20 hosts, plus cloud1 -> cloud6
// long-haul traffic): per-hop queue, drop rate, utilization, and fairness.
//
// Expected shape: PERT holds low queues and ~zero drops on every hop at
// utilization comparable to SACK/RED-ECN.
#include "common.h"
#include "exp/multi_bottleneck.h"
#include "exp/table.h"

int main(int argc, char** argv) {
  using namespace pert;
  const bench::Opts opt = bench::Opts::parse(argc, argv);
  opt.banner("Figure 11: multiple bottlenecks (6-router chain)",
             "PERT: low queue + zero drops on all hops, util ~ RED-ECN, "
             "fairness maintained");

  for (exp::Scheme s :
       {exp::Scheme::kPert, exp::Scheme::kSackDroptail,
        exp::Scheme::kSackRedEcn, exp::Scheme::kVegas}) {
    std::fprintf(stderr, "  running %s ...\n",
                 std::string(exp::to_string(s)).c_str());
    exp::MultiBottleneckConfig cfg;
    cfg.scheme = s;
    cfg.num_routers = 6;
    cfg.hosts_per_cloud = opt.full ? 20 : 10;
    cfg.router_link_bps = opt.full ? 150e6 : 100e6;
    cfg.router_link_delay = 0.005;
    cfg.access_bps = 1e9;
    cfg.access_delay = 0.005;
    cfg.start_window = opt.full ? 50.0 : 10.0;
    cfg.seed = 11;
    exp::MultiBottleneck mb(cfg);
    const auto hops =
        opt.full ? mb.run(100.0, 200.0) : mb.run(20.0, 40.0);

    std::printf("scheme: %s\n", std::string(exp::to_string(s)).c_str());
    exp::Table t({"hop", "avg queue (pkts)", "drop rate", "utilization (%)",
                  "jain (hop group)"});
    for (std::size_t h = 0; h < hops.size(); ++h)
      t.row({"R" + std::to_string(h + 1) + "-R" + std::to_string(h + 2),
             exp::fmt(hops[h].avg_queue_pkts, "%.1f"),
             exp::fmt(hops[h].drop_rate, "%.2e"),
             exp::fmt(100 * hops[h].utilization, "%.1f"),
             exp::fmt(hops[h].jain, "%.3f")});
    t.print();
    std::printf("\n");
  }
  return 0;
}
