// Figure 14: emulating PI at end hosts. PERT-PI vs router-based PI with ECN
// vs SACK/DropTail across the RTT sweep (150 Mbps, 50 flows, 3 ms target
// delay), as in the Section 6.1 preliminary evaluation.
//
// Expected shape: PERT-PI utilization and average queue similar to router
// PI/ECN; both avoid packet drops; fairness comparable (PERT-PI slightly
// worse at low RTT, slightly better at high RTT).
#include "common.h"
#include "sweep.h"

int main(int argc, char** argv) {
  using namespace pert;
  const bench::Opts opt = bench::Opts::parse(argc, argv);
  opt.banner("Figure 14: emulating PI at end hosts",
             "PERT-PI ~ router PI/ECN on queue/util; both ~zero drops");

  bench::SweepSpec spec;
  spec.name = "fig14_pert_pi";
  spec.x_name = "rtt";
  spec.xs = opt.full
                ? std::vector<double>{0.010, 0.030, 0.060, 0.100, 0.300, 1.0}
                : std::vector<double>{0.010, 0.030, 0.060, 0.100, 0.300};
  for (double r : spec.xs) spec.x_labels.push_back(exp::fmt(r * 1e3, "%g ms"));
  spec.schemes = {exp::Scheme::kPertPi, exp::Scheme::kSackPiEcn,
                  exp::Scheme::kSackDroptail};
  const double bw = opt.full ? 150e6 : 100e6;
  spec.config = [&](double rtt, const exp::SchemeSpec& s) {
    exp::DumbbellConfig cfg;
    cfg.scheme = s;
    cfg.bottleneck_bps = bw;
    cfg.rtt = rtt;
    cfg.num_fwd_flows = 50;
    cfg.pi_target_delay = 0.003;
    cfg.start_window = opt.full ? 50.0 : 10.0;
    cfg.seed = 14;
    return cfg;
  };
  spec.window = [&](double rtt) {
    const double warm = std::max(opt.full ? 100.0 : 20.0, 40.0 * rtt);
    const double meas = std::max(opt.full ? 200.0 : 40.0, 60.0 * rtt);
    return std::pair{warm, meas};
  };
  opt.export_report(bench::run_dumbbell_sweep(spec, opt.runner(), opt.trace_dir, opt.worker));
  return 0;
}
